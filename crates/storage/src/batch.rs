//! Column batches and the vectorized-execution substrate.
//!
//! The executor's columnar engine evaluates operators batch-at-a-time: a
//! scan walks a column in [`BATCH_SIZE`]-row windows, each wrapped in a
//! [`ColumnBatch`], and predicates communicate through a *selection
//! vector* — the row ids still alive after the filters applied so far —
//! instead of materializing filtered copies of the data. Dictionary-coded
//! string columns need no special casing here: their codes are plain
//! `i64`s, so the same comparison kernels serve ints, dates, and strings
//! (the dictionary is consulted once per predicate to encode the constant,
//! never per row).
//!
//! Selection vectors and other scratch buffers are recycled through a
//! thread-local [`BufferPool`] so steady-state batch evaluation allocates
//! nothing: [`take_u32_buffer`]/[`take_i64_buffer`] hand out cleared
//! buffers that return to the pool on drop.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

use crate::value::NULL_SENTINEL;

/// Rows per batch window. Small enough that a batch's selection vector and
/// the column window it points into stay cache-resident, large enough to
/// amortize per-batch bookkeeping.
pub const BATCH_SIZE: usize = 1024;

/// A read-only window of one column, positioned at an absolute row offset.
///
/// `data[k]` is the value of row `first_row + k`. Selection vectors carry
/// *absolute* row ids so downstream operators (row-set materialization,
/// metrics, caches) never need to know the batching; the batch translates
/// back to window-relative indexes internally.
#[derive(Debug, Clone, Copy)]
pub struct ColumnBatch<'a> {
    data: &'a [i64],
    first_row: u32,
}

impl<'a> ColumnBatch<'a> {
    /// A batch over `data`, whose first element is absolute row
    /// `first_row`.
    pub fn new(data: &'a [i64], first_row: u32) -> Self {
        ColumnBatch { data, first_row }
    }

    /// Rows in this batch.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The raw window.
    pub fn data(&self) -> &'a [i64] {
        self.data
    }

    /// Absolute row id of the first element.
    pub fn first_row(&self) -> u32 {
        self.first_row
    }

    /// Seed a selection vector: append the absolute ids of the rows in
    /// this batch whose (non-NULL) value satisfies `pred`. The predicate
    /// receives raw `i64`s and is monomorphized per comparison operator,
    /// so the operator dispatch happens once per batch, not once per row.
    #[inline]
    pub fn filter_into(&self, sel: &mut Vec<u32>, mut pred: impl FnMut(i64) -> bool) {
        let base = self.first_row;
        for (k, &v) in self.data.iter().enumerate() {
            if v != NULL_SENTINEL && pred(v) {
                sel.push(base + k as u32);
            }
        }
    }

    /// Refine a selection vector in place: keep only the already-selected
    /// rows whose (non-NULL) value in this column also satisfies `pred`.
    /// Every id in `sel` must lie inside this batch's window.
    #[inline]
    pub fn refine(&self, sel: &mut Vec<u32>, mut pred: impl FnMut(i64) -> bool) {
        let base = self.first_row;
        sel.retain(|&id| {
            let v = self.data[(id - base) as usize];
            v != NULL_SENTINEL && pred(v)
        });
    }

    /// Gather the values of the selected rows into `out`.
    #[inline]
    pub fn gather_into(&self, sel: &[u32], out: &mut Vec<i64>) {
        let base = self.first_row;
        out.extend(sel.iter().map(|&id| self.data[(id - base) as usize]));
    }
}

/// Reusable scratch buffers for batch evaluation, one pool per thread.
///
/// Buffers are capped in count and capacity so a single huge intermediate
/// cannot pin memory for the life of the thread.
#[derive(Debug, Default)]
pub struct BufferPool {
    u32_bufs: Vec<Vec<u32>>,
    i64_bufs: Vec<Vec<i64>>,
}

/// Buffers kept per pool per type; excess returns are dropped.
const POOL_MAX_BUFFERS: usize = 8;
/// Returned buffers above this capacity are dropped rather than pooled.
const POOL_MAX_CAPACITY: usize = 1 << 20;

thread_local! {
    static POOL: RefCell<BufferPool> = RefCell::new(BufferPool::default());
}

impl BufferPool {
    fn take_u32(&mut self) -> Vec<u32> {
        self.u32_bufs.pop().unwrap_or_default()
    }

    fn take_i64(&mut self) -> Vec<i64> {
        self.i64_bufs.pop().unwrap_or_default()
    }

    fn put_u32(&mut self, mut buf: Vec<u32>) {
        if self.u32_bufs.len() < POOL_MAX_BUFFERS && buf.capacity() <= POOL_MAX_CAPACITY {
            buf.clear();
            self.u32_bufs.push(buf);
        }
    }

    fn put_i64(&mut self, mut buf: Vec<i64>) {
        if self.i64_bufs.len() < POOL_MAX_BUFFERS && buf.capacity() <= POOL_MAX_CAPACITY {
            buf.clear();
            self.i64_bufs.push(buf);
        }
    }
}

/// An empty `Vec<u32>` borrowed from the calling thread's [`BufferPool`];
/// returns there on drop. Dereferences to the vector.
#[derive(Debug)]
pub struct PooledU32(Option<Vec<u32>>);

/// An empty `Vec<i64>` borrowed from the calling thread's [`BufferPool`];
/// returns there on drop. Dereferences to the vector.
#[derive(Debug)]
pub struct PooledI64(Option<Vec<i64>>);

/// Borrow a cleared `u32` scratch buffer from the thread's pool.
pub fn take_u32_buffer() -> PooledU32 {
    PooledU32(Some(POOL.with(|p| p.borrow_mut().take_u32())))
}

/// Borrow a cleared `i64` scratch buffer from the thread's pool.
pub fn take_i64_buffer() -> PooledI64 {
    PooledI64(Some(POOL.with(|p| p.borrow_mut().take_i64())))
}

impl Deref for PooledU32 {
    type Target = Vec<u32>;
    fn deref(&self) -> &Vec<u32> {
        // lint: panic-ok(Deref cannot return Result; the Option is None only transiently inside Drop, which never derefs)
        self.0.as_ref().expect("pooled buffer taken")
    }
}

impl DerefMut for PooledU32 {
    fn deref_mut(&mut self) -> &mut Vec<u32> {
        // lint: panic-ok(Deref cannot return Result; the Option is None only transiently inside Drop, which never derefs)
        self.0.as_mut().expect("pooled buffer taken")
    }
}

impl Drop for PooledU32 {
    fn drop(&mut self) {
        if let Some(buf) = self.0.take() {
            // The thread-local may already be torn down at thread exit;
            // then the buffer just drops.
            let _ = POOL.try_with(|p| p.borrow_mut().put_u32(buf));
        }
    }
}

impl Deref for PooledI64 {
    type Target = Vec<i64>;
    fn deref(&self) -> &Vec<i64> {
        // lint: panic-ok(Deref cannot return Result; the Option is None only transiently inside Drop, which never derefs)
        self.0.as_ref().expect("pooled buffer taken")
    }
}

impl DerefMut for PooledI64 {
    fn deref_mut(&mut self) -> &mut Vec<i64> {
        // lint: panic-ok(Deref cannot return Result; the Option is None only transiently inside Drop, which never derefs)
        self.0.as_mut().expect("pooled buffer taken")
    }
}

impl Drop for PooledI64 {
    fn drop(&mut self) {
        if let Some(buf) = self.0.take() {
            let _ = POOL.try_with(|p| p.borrow_mut().put_i64(buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_seeds_absolute_ids_and_skips_nulls() {
        let data = vec![5, NULL_SENTINEL, 7, 2, 9];
        let batch = ColumnBatch::new(&data, 100);
        let mut sel = Vec::new();
        batch.filter_into(&mut sel, |v| v > 4);
        assert_eq!(sel, vec![100, 102, 104]);
    }

    #[test]
    fn refine_compacts_in_place() {
        let c1 = vec![5, 6, 7, 2, 9];
        let c2 = vec![1, NULL_SENTINEL, 3, 4, 5];
        let b1 = ColumnBatch::new(&c1, 0);
        let b2 = ColumnBatch::new(&c2, 0);
        let mut sel = Vec::new();
        b1.filter_into(&mut sel, |v| v > 4); // rows 0,1,2,4
        b2.refine(&mut sel, |v| v >= 3); // drops row 0 (v=1) and row 1 (NULL)
        assert_eq!(sel, vec![2, 4]);
    }

    #[test]
    fn gather_resolves_selected_values() {
        let data = vec![10, 20, 30, 40];
        let batch = ColumnBatch::new(&data, 8);
        let mut out = Vec::new();
        batch.gather_into(&[8, 10, 11], &mut out);
        assert_eq!(out, vec![10, 30, 40]);
    }

    #[test]
    fn pooled_buffers_are_recycled_cleared() {
        let ptr = {
            let mut b = take_u32_buffer();
            b.extend_from_slice(&[1, 2, 3]);
            b.as_ptr()
        };
        // Same allocation comes back, emptied.
        let b2 = take_u32_buffer();
        assert!(b2.is_empty());
        assert_eq!(b2.as_ptr(), ptr);

        let mut i = take_i64_buffer();
        i.push(7);
        drop(i);
        assert!(take_i64_buffer().is_empty());
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        {
            let mut b = take_u32_buffer();
            b.reserve(POOL_MAX_CAPACITY + 1);
        }
        let b2 = take_u32_buffer();
        assert!(b2.capacity() <= POOL_MAX_CAPACITY);
    }
}
