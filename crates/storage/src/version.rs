//! `DataVersion` — the monotonic clock every data-derived artifact keys on.
//!
//! A [`Database`](crate::Database) starts at [`DataVersion::ZERO`] and bumps
//! its version on every mutation (append, delete, TTL expiry). Each mutated
//! [`Table`](crate::Table) is stamped with the database version in force
//! when it changed, so a consumer holding statistics, samples, cached plans
//! or validated cardinalities can tell *exactly* which tables moved since
//! the artifact was derived — and a cache entry keyed by the version it was
//! computed at can never be confused with one from a different data state.
//!
//! The version is deliberately a plain monotonic counter, not a content
//! hash: two databases with identical contents may carry different
//! versions (one freshly built, one having ingested and expired back to
//! the same rows). Equality of versions within one database lineage means
//! "no mutation happened in between"; it is never compared across
//! databases.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A monotonic data version. Ordered, hashable and serializable so it can
/// ride inside cache keys and persisted statistics.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DataVersion(pub u64);

impl DataVersion {
    /// The version of a freshly built, never-mutated database.
    pub const ZERO: DataVersion = DataVersion(0);

    /// Construct from a raw counter value.
    pub const fn new(raw: u64) -> Self {
        DataVersion(raw)
    }

    /// The raw counter value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The successor version (one mutation later).
    pub const fn next(self) -> Self {
        DataVersion(self.0 + 1)
    }
}

impl fmt::Display for DataVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_next() {
        let v0 = DataVersion::ZERO;
        let v1 = v0.next();
        assert!(v0 < v1);
        assert_eq!(v1.get(), 1);
        assert_eq!(DataVersion::new(7), DataVersion(7));
        assert_eq!(v1.to_string(), "v1");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(DataVersion::default(), DataVersion::ZERO);
    }
}
