//! Page accounting for the I/O cost model.
//!
//! The engine is in-memory, but the optimizer's cost model (like
//! PostgreSQL's) reasons about page reads: sequential page fetches cost
//! `seq_page_cost`, random fetches `random_page_cost`. This module defines
//! how logical row counts translate into page counts so those terms are
//! well-defined. Costing is what decides plan choice — the paper's whole
//! point is what happens when the *cardinalities* feeding these formulas
//! are wrong — so the page model just needs to be monotone and consistent,
//! not byte-exact.

/// Bytes per heap page (PostgreSQL's default block size).
pub const PAGE_SIZE: u64 = 8192;

/// Number of heap pages needed for `rows` tuples of `row_width` bytes.
///
/// A minimum of one page is charged for any non-empty relation; an empty
/// relation still occupies one page (matching PostgreSQL, which never
/// estimates zero pages for an existing table).
pub fn pages_for(rows: u64, row_width: u64) -> u64 {
    let bytes = rows.saturating_mul(row_width.max(1));
    bytes.div_ceil(PAGE_SIZE).max(1)
}

/// Fractional pages for a *estimated* (possibly fractional) row count; used
/// by the cost model on intermediate results.
pub fn pages_for_estimate(rows: f64, row_width: u64) -> f64 {
    let bytes = rows.max(0.0) * row_width.max(1) as f64;
    (bytes / PAGE_SIZE as f64).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_one_page() {
        assert_eq!(pages_for(0, 8), 1);
        assert_eq!(pages_for(1, 8), 1);
        assert!(pages_for_estimate(0.0, 8) >= 1.0);
    }

    #[test]
    fn pages_round_up() {
        // 1025 rows * 8 bytes = 8200 bytes -> 2 pages.
        assert_eq!(pages_for(1025, 8), 2);
        assert_eq!(pages_for(1024, 8), 1);
    }

    #[test]
    fn estimate_is_monotone_in_rows() {
        let a = pages_for_estimate(10_000.0, 16);
        let b = pages_for_estimate(20_000.0, 16);
        assert!(b > a);
    }

    #[test]
    fn zero_width_defends_against_division_blowups() {
        assert_eq!(pages_for(100, 0), 1);
        assert!(pages_for_estimate(100.0, 0).is_finite());
    }
}
