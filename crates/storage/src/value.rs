//! Scalar values and the string dictionary.
//!
//! Storage keeps every scalar as an `i64` (the engine's join and selection
//! columns are integers, dates, or dictionary-coded categoricals — see
//! DESIGN.md §5). [`Value`] is the typed view used at the API boundary:
//! query construction, result display, and tests.

use std::fmt;
use std::sync::Arc;

use reopt_common::FxHashMap;

/// A typed scalar at the API surface.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer (also carries dates as epoch days and money as cents).
    Int(i64),
    /// 64-bit float — produced by aggregation, never stored in base tables.
    Float(f64),
    /// A string; stored dictionary-coded.
    Str(Arc<str>),
    /// SQL NULL.
    Null,
}

impl Value {
    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload, widening ints.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

/// Sentinel `i64` used to encode NULL inside storage columns.
///
/// `i64::MIN` never occurs in generated data (domains are small positive
/// ranges), and the stats/executor layers treat it specially.
pub const NULL_SENTINEL: i64 = i64::MIN;

/// An interning dictionary mapping strings to dense `i64` codes.
///
/// Dictionary codes are assigned in first-insertion order, so code order is
/// *not* lexicographic; equality predicates are exact, range predicates over
/// dictionary columns are rejected by the planner.
#[derive(Debug, Clone, Default)]
pub struct StringDict {
    by_code: Vec<Arc<str>>,
    by_str: FxHashMap<Arc<str>, i64>,
}

impl StringDict {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its code (existing or fresh).
    pub fn intern(&mut self, s: &str) -> i64 {
        if let Some(&code) = self.by_str.get(s) {
            return code;
        }
        let code = self.by_code.len() as i64;
        let arc: Arc<str> = Arc::from(s);
        self.by_code.push(arc.clone());
        self.by_str.insert(arc, code);
        code
    }

    /// Look up an existing code without interning.
    pub fn code_of(&self, s: &str) -> Option<i64> {
        self.by_str.get(s).copied()
    }

    /// The string for `code`, if in range.
    pub fn lookup(&self, code: i64) -> Option<&Arc<str>> {
        usize::try_from(code).ok().and_then(|i| self.by_code.get(i))
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.by_code.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_code.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_float(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Float(2.5).as_int(), None);
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
        assert_eq!(Value::Null.as_int(), None);
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::from("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn dict_interning_is_stable() {
        let mut d = StringDict::new();
        let a = d.intern("ASIA");
        let b = d.intern("EUROPE");
        let a2 = d.intern("ASIA");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.lookup(a).map(|s| &**s), Some("ASIA"));
        assert_eq!(d.code_of("EUROPE"), Some(b));
        assert_eq!(d.code_of("AFRICA"), None);
        assert_eq!(d.lookup(99), None);
        assert_eq!(d.lookup(-1), None);
    }

    #[test]
    fn codes_are_dense_from_zero() {
        let mut d = StringDict::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("c"), 2);
    }
}
