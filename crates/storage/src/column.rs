//! Columns: typed `i64` vectors with an optional string dictionary.

use std::sync::Arc;

use crate::schema::LogicalType;
use crate::value::{StringDict, Value, NULL_SENTINEL};
use reopt_common::{Error, Result};

/// One stored column.
///
/// Data is a dense `Vec<i64>`; NULLs are encoded as [`NULL_SENTINEL`].
/// Dictionary-typed columns share an [`Arc<StringDict>`] so that cheap
/// clones (e.g. sample tables) do not duplicate the dictionary.
#[derive(Debug, Clone)]
pub struct Column {
    ty: LogicalType,
    data: Vec<i64>,
    dict: Option<Arc<StringDict>>,
}

impl Column {
    /// Build a column from raw `i64` data.
    pub fn from_i64(ty: LogicalType, data: Vec<i64>) -> Self {
        Column {
            ty,
            data,
            dict: None,
        }
    }

    /// Build a dictionary column from strings.
    pub fn from_strings<S: AsRef<str>>(values: &[S]) -> Self {
        let mut dict = StringDict::new();
        let data = values.iter().map(|s| dict.intern(s.as_ref())).collect();
        Column {
            ty: LogicalType::Dict,
            data,
            dict: Some(Arc::new(dict)),
        }
    }

    /// Build a dictionary column from codes plus a shared dictionary.
    pub fn from_codes(data: Vec<i64>, dict: Arc<StringDict>) -> Self {
        Column {
            ty: LogicalType::Dict,
            data,
            dict: Some(dict),
        }
    }

    /// Logical type.
    pub fn ty(&self) -> LogicalType {
        self.ty
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw `i64` data (NULLs as [`NULL_SENTINEL`]).
    pub fn data(&self) -> &[i64] {
        &self.data
    }

    /// The dictionary for a dict column.
    pub fn dict(&self) -> Option<&Arc<StringDict>> {
        self.dict.as_ref()
    }

    /// Raw value at `row`.
    pub fn raw(&self, row: usize) -> i64 {
        self.data[row]
    }

    /// Typed value at `row`.
    pub fn value(&self, row: usize) -> Value {
        let raw = self.data[row];
        if raw == NULL_SENTINEL {
            return Value::Null;
        }
        match self.ty {
            LogicalType::Dict => match self.dict.as_ref().and_then(|d| d.lookup(raw)) {
                Some(s) => Value::Str(s.clone()),
                None => Value::Int(raw),
            },
            _ => Value::Int(raw),
        }
    }

    /// Translate a typed constant to this column's raw representation, for
    /// predicate evaluation. Returns an error for type mismatches; returns
    /// `Ok(None)` for a string constant absent from the dictionary (a
    /// predicate on it matches nothing).
    pub fn encode_constant(&self, v: &Value) -> Result<Option<i64>> {
        match (self.ty, v) {
            (LogicalType::Dict, Value::Str(s)) => Ok(self.dict.as_ref().and_then(|d| d.code_of(s))),
            (LogicalType::Dict, Value::Int(raw)) => Ok(Some(*raw)),
            (LogicalType::Dict, other) => Err(Error::invalid(format!(
                "cannot compare dict column with {other:?}"
            ))),
            (_, Value::Int(raw)) => Ok(Some(*raw)),
            (_, other) => Err(Error::invalid(format!(
                "cannot compare {:?} column with {other:?}",
                self.ty
            ))),
        }
    }

    /// Gather rows by index into a new raw vector (used by sampling).
    pub fn gather(&self, rows: &[u32]) -> Vec<i64> {
        rows.iter().map(|&r| self.data[r as usize]).collect()
    }

    /// Check that `v` can be appended to this column without mutating
    /// anything: NULL is always accepted, dictionary columns take strings,
    /// every other type takes integers. [`Table::append_rows`]
    /// (crate::Table::append_rows) vets a whole batch with this before
    /// applying any of it, which is what makes batch application atomic.
    pub fn can_append(&self, v: &Value) -> Result<()> {
        match (self.ty, v) {
            (_, Value::Null) => Ok(()),
            (LogicalType::Dict, Value::Str(_)) => Ok(()),
            (LogicalType::Dict, other) => Err(Error::invalid(format!(
                "cannot append {other:?} to a dict column"
            ))),
            (_, Value::Int(_)) => Ok(()),
            (ty, other) => Err(Error::invalid(format!(
                "cannot append {other:?} to a {ty:?} column"
            ))),
        }
    }

    /// Append a value previously vetted by [`Column::can_append`] and
    /// return the raw representation pushed (for index maintenance).
    /// Strings are interned in arrival order — the same order a fresh
    /// [`Column::from_strings`] build would intern them, so dictionary
    /// codes after incremental appends match a from-scratch build over the
    /// same row sequence (the quiescence bit-identity contract). A value
    /// that was never vetted degrades to NULL rather than corrupting the
    /// column.
    pub fn append_value(&mut self, v: &Value) -> i64 {
        let raw = match (self.ty, v) {
            (_, Value::Null) => NULL_SENTINEL,
            (LogicalType::Dict, Value::Str(s)) => {
                let dict = self.dict.get_or_insert_with(|| Arc::new(StringDict::new()));
                Arc::make_mut(dict).intern(s)
            }
            (_, other) => other.as_int().unwrap_or(NULL_SENTINEL),
        };
        self.data.push(raw);
        raw
    }

    /// Keep only the rows listed in `keep` (ascending), dropping the rest —
    /// the rewrite primitive behind `delete_where`. The dictionary is left
    /// untouched: codes of deleted rows simply become unreferenced.
    pub(crate) fn retain_rows(&mut self, keep: &[u32]) {
        self.data = self.gather(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_column_round_trip() {
        let c = Column::from_i64(LogicalType::Int, vec![1, 2, NULL_SENTINEL]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(2), Value::Null);
        assert_eq!(c.raw(1), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn string_column_round_trip() {
        let c = Column::from_strings(&["ASIA", "EUROPE", "ASIA"]);
        assert_eq!(c.ty(), LogicalType::Dict);
        assert_eq!(c.value(0), Value::from("ASIA"));
        assert_eq!(c.value(2), Value::from("ASIA"));
        assert_eq!(c.raw(0), c.raw(2));
        assert_ne!(c.raw(0), c.raw(1));
    }

    #[test]
    fn encode_constant_for_dict() {
        let c = Column::from_strings(&["ASIA", "EUROPE"]);
        let code = c.encode_constant(&Value::from("EUROPE")).unwrap();
        assert_eq!(code, Some(c.raw(1)));
        // Absent string: matches nothing but is not an error.
        assert_eq!(c.encode_constant(&Value::from("MARS")).unwrap(), None);
        // Float against dict: type error.
        assert!(c.encode_constant(&Value::Float(1.0)).is_err());
    }

    #[test]
    fn encode_constant_for_int() {
        let c = Column::from_i64(LogicalType::Date, vec![10, 20]);
        assert_eq!(c.encode_constant(&Value::Int(15)).unwrap(), Some(15));
        assert!(c.encode_constant(&Value::from("x")).is_err());
    }

    #[test]
    fn gather_selects_rows() {
        let c = Column::from_i64(LogicalType::Int, vec![10, 20, 30, 40]);
        assert_eq!(c.gather(&[3, 1]), vec![40, 20]);
        assert_eq!(c.gather(&[]), Vec::<i64>::new());
    }
}
