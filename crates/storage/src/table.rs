//! Tables: schema + columns + optional hash indexes.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::column::Column;
use crate::page::{pages_for, PAGE_SIZE};
use crate::schema::TableSchema;
use crate::value::{Value, NULL_SENTINEL};
use crate::version::DataVersion;
use reopt_common::{ColId, Error, FxHashMap, Result, TableId};

/// An equality (hash) index over one column: value → row ids.
///
/// This models a B-tree/hash index on the base table; the optimizer's
/// index-nested-loop access path and the executor's index probes both use
/// it. NULLs are not indexed.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: FxHashMap<i64, Vec<u32>>,
}

impl HashIndex {
    /// Build over a raw column.
    pub fn build(data: &[i64]) -> Self {
        let mut map: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
        for (row, &v) in data.iter().enumerate() {
            if v != NULL_SENTINEL {
                map.entry(v).or_default().push(row as u32);
            }
        }
        HashIndex { map }
    }

    /// Rows matching `value` (empty slice when absent).
    pub fn probe(&self, value: i64) -> &[u32] {
        self.map.get(&value).map_or(&[], |v| v.as_slice())
    }

    /// Number of distinct indexed keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Register one appended row. Callers must insert rows in ascending
    /// row-id order: each posting list then stays sorted exactly as a fresh
    /// [`HashIndex::build`] over the extended column would leave it, which
    /// keeps incremental ingest bit-identical to a from-scratch build.
    pub fn insert(&mut self, value: i64, row: u32) {
        if value != NULL_SENTINEL {
            self.map.entry(value).or_default().push(row);
        }
    }
}

/// A stored base table.
///
/// Tables are versioned: [`Table::version`] is the database-wide
/// [`DataVersion`] in force when this table last changed, and
/// [`Table::last_rewrite`] the version of its last *in-place rewrite*
/// (delete / TTL expiry). Appends only ever extend columns, so a consumer
/// that analyzed the table at version `v ≥ last_rewrite` knows every row it
/// saw is still there, unchanged, at its old position — the contract
/// [`Table::dirty_tail`] exposes for incremental ANALYZE.
///
/// Indexes live in an ordered map so every traversal (subset
/// materialization, post-delete rebuilds) visits columns in [`ColId`]
/// order — deterministic by construction (rule R1 of `reopt-lint`).
#[derive(Debug, Clone)]
pub struct Table {
    id: TableId,
    name: String,
    schema: TableSchema,
    columns: Vec<Column>,
    indexes: BTreeMap<ColId, HashIndex>,
    row_count: usize,
    version: DataVersion,
    last_rewrite: DataVersion,
}

impl Table {
    /// Assemble a table from columns. All columns must match the schema's
    /// arity and have equal lengths.
    pub fn new(
        id: TableId,
        name: impl Into<String>,
        schema: TableSchema,
        columns: Vec<Column>,
    ) -> Result<Self> {
        let name = name.into();
        if columns.len() != schema.arity() {
            return Err(Error::invalid(format!(
                "table `{name}`: {} columns supplied for arity-{} schema",
                columns.len(),
                schema.arity()
            )));
        }
        let row_count = columns.first().map_or(0, Column::len);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != row_count {
                return Err(Error::invalid(format!(
                    "table `{name}`: column {i} has {} rows, expected {row_count}",
                    c.len()
                )));
            }
            let declared = schema.column(ColId::from(i))?.ty;
            if c.ty() != declared {
                return Err(Error::invalid(format!(
                    "table `{name}`: column {i} is {:?}, schema declares {declared:?}",
                    c.ty()
                )));
            }
        }
        Ok(Table {
            id,
            name,
            schema,
            columns,
            indexes: BTreeMap::new(),
            row_count,
            version: DataVersion::ZERO,
            last_rewrite: DataVersion::ZERO,
        })
    }

    /// Catalog identifier.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column accessor.
    pub fn column(&self, col: ColId) -> Result<&Column> {
        self.columns
            .get(col.index())
            .ok_or_else(|| Error::not_found(format!("table `{}` column {col}", self.name)))
    }

    /// Column accessor by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let id = self.schema.col_by_name(name)?;
        self.column(id)
    }

    /// Create (or rebuild) a hash index over `col`.
    pub fn create_index(&mut self, col: ColId) -> Result<()> {
        let data = self.column(col)?.data();
        let idx = HashIndex::build(data);
        self.indexes.insert(col, idx);
        Ok(())
    }

    /// The index over `col`, if one exists.
    pub fn index(&self, col: ColId) -> Option<&HashIndex> {
        self.indexes.get(&col)
    }

    /// Whether `col` is indexed.
    pub fn has_index(&self, col: ColId) -> bool {
        self.indexes.contains_key(&col)
    }

    /// Heap pages occupied by this table (see [`crate::page`]).
    pub fn heap_pages(&self) -> u64 {
        pages_for(self.row_count as u64, self.schema.row_width())
    }

    /// Bytes per page, re-exported for cost-model readability.
    pub fn page_size(&self) -> u64 {
        PAGE_SIZE
    }

    /// Version of the last mutation (appends included); `ZERO` for a table
    /// that never changed after construction.
    pub fn version(&self) -> DataVersion {
        self.version
    }

    /// Version of the last in-place rewrite (delete / TTL expiry); `ZERO`
    /// when the table's history is append-only.
    pub fn last_rewrite(&self) -> DataVersion {
        self.last_rewrite
    }

    /// The contiguous row range that changed since a consumer observed
    /// this table at version `as_of` holding `rows_then` rows.
    ///
    /// Returns `Some(rows_then..row_count)` — possibly empty — when every
    /// mutation since `as_of` was an append, so the old prefix is
    /// untouched and re-scanning just the tail is exact. Returns `None`
    /// when the table was rewritten in place after `as_of` (or the claimed
    /// prior row count is inconsistent): the caller must re-scan the whole
    /// table.
    pub fn dirty_tail(&self, as_of: DataVersion, rows_then: usize) -> Option<Range<usize>> {
        if as_of < self.last_rewrite || rows_then > self.row_count {
            return None;
        }
        Some(rows_then..self.row_count)
    }

    /// Append a batch of typed rows, stamping the table with `stamp`.
    ///
    /// The whole batch is validated (arity + per-column type check) before
    /// anything mutates, so a bad row leaves the table untouched. Indexes
    /// are extended in ascending row order — bit-identical to rebuilding
    /// them from scratch over the extended columns. Returns the number of
    /// rows appended.
    pub fn append_rows(&mut self, rows: &[Vec<Value>], stamp: DataVersion) -> Result<usize> {
        for (i, row) in rows.iter().enumerate() {
            if row.len() != self.schema.arity() {
                return Err(Error::invalid(format!(
                    "table `{}`: appended row {i} has {} values for arity-{} schema",
                    self.name,
                    row.len(),
                    self.schema.arity()
                )));
            }
            for (col, v) in self.columns.iter().zip(row) {
                col.can_append(v).map_err(|e| {
                    Error::invalid(format!("table `{}`: appended row {i}: {e}", self.name))
                })?;
            }
        }
        let base = self.row_count;
        for (r, row) in rows.iter().enumerate() {
            let row_id = (base + r) as u32;
            for (ci, v) in row.iter().enumerate() {
                let raw = self.columns[ci].append_value(v);
                if let Some(idx) = self.indexes.get_mut(&ColId::from(ci)) {
                    idx.insert(raw, row_id);
                }
            }
        }
        self.row_count += rows.len();
        self.version = stamp;
        Ok(rows.len())
    }

    /// Delete every row whose raw value in `col` satisfies `pred`,
    /// stamping the table with `stamp`. This is an in-place rewrite:
    /// surviving rows are compacted (relative order preserved), every
    /// index is rebuilt, and [`Table::last_rewrite`] advances — consumers
    /// of [`Table::dirty_tail`] from before the delete fall back to a full
    /// re-scan. Returns the number of rows deleted.
    pub fn delete_where<F: Fn(i64) -> bool>(
        &mut self,
        col: ColId,
        pred: F,
        stamp: DataVersion,
    ) -> Result<usize> {
        let data = self.column(col)?.data();
        let keep: Vec<u32> = data
            .iter()
            .enumerate()
            .filter(|&(_, &v)| !pred(v))
            .map(|(i, _)| i as u32)
            .collect();
        let deleted = self.row_count - keep.len();
        if deleted > 0 {
            for c in &mut self.columns {
                c.retain_rows(&keep);
            }
            self.row_count = keep.len();
            let indexed: Vec<ColId> = self.indexes.keys().copied().collect();
            for col in indexed {
                self.create_index(col)?;
            }
            self.last_rewrite = stamp;
        }
        self.version = stamp;
        Ok(deleted)
    }

    /// TTL expiry: delete every row whose value in `col` is non-NULL and
    /// strictly below `cutoff` (snorkel-style time sharding, with `col`
    /// an ordered column such as a date). NULL timestamps never expire.
    pub fn expire_older_than(
        &mut self,
        col: ColId,
        cutoff: i64,
        stamp: DataVersion,
    ) -> Result<usize> {
        let ty = self.column(col)?.ty();
        if !ty.is_ordered() {
            return Err(Error::invalid(format!(
                "table `{}`: cannot expire by unordered column {col} ({ty:?})",
                self.name
            )));
        }
        self.delete_where(col, |v| v != NULL_SENTINEL && v < cutoff, stamp)
    }

    /// Derive a new table holding only `rows` (used to materialize sample
    /// tables). Indexes are rebuilt on the sampled data for the columns that
    /// were indexed on the parent.
    pub fn subset(&self, id: TableId, name: impl Into<String>, rows: &[u32]) -> Result<Table> {
        let columns = self
            .columns
            .iter()
            .map(|c| match c.dict() {
                Some(d) => Column::from_codes(c.gather(rows), d.clone()),
                None => Column::from_i64(c.ty(), c.gather(rows)),
            })
            .collect();
        let mut t = Table::new(id, name, self.schema.clone(), columns)?;
        for col in self.indexes.keys() {
            t.create_index(*col)?;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, LogicalType};

    fn sample_table() -> Table {
        let schema = TableSchema::new(vec![
            ColumnDef::new("k", LogicalType::Int),
            ColumnDef::new("v", LogicalType::Int),
        ])
        .unwrap();
        Table::new(
            TableId::new(0),
            "t",
            schema,
            vec![
                Column::from_i64(LogicalType::Int, vec![1, 2, 2, 3]),
                Column::from_i64(LogicalType::Int, vec![10, 20, 21, 30]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        let schema = TableSchema::new(vec![ColumnDef::new("k", LogicalType::Int)]).unwrap();
        // Wrong arity.
        assert!(Table::new(TableId::new(0), "t", schema.clone(), vec![]).is_err());
        // Ragged columns.
        let schema2 = TableSchema::new(vec![
            ColumnDef::new("a", LogicalType::Int),
            ColumnDef::new("b", LogicalType::Int),
        ])
        .unwrap();
        assert!(Table::new(
            TableId::new(0),
            "t",
            schema2,
            vec![
                Column::from_i64(LogicalType::Int, vec![1]),
                Column::from_i64(LogicalType::Int, vec![1, 2]),
            ],
        )
        .is_err());
        // Type mismatch.
        assert!(Table::new(
            TableId::new(0),
            "t",
            schema,
            vec![Column::from_i64(LogicalType::Date, vec![1])],
        )
        .is_err());
    }

    #[test]
    fn index_probe() {
        let mut t = sample_table();
        t.create_index(ColId::new(0)).unwrap();
        let idx = t.index(ColId::new(0)).unwrap();
        assert_eq!(idx.probe(2), &[1, 2]);
        assert_eq!(idx.probe(9), &[] as &[u32]);
        assert_eq!(idx.distinct_keys(), 3);
        assert!(t.has_index(ColId::new(0)));
        assert!(!t.has_index(ColId::new(1)));
    }

    #[test]
    fn nulls_are_not_indexed() {
        let idx = HashIndex::build(&[5, NULL_SENTINEL, 5]);
        assert_eq!(idx.probe(5), &[0, 2]);
        assert_eq!(idx.probe(NULL_SENTINEL), &[] as &[u32]);
    }

    #[test]
    fn subset_preserves_schema_and_indexes() {
        let mut t = sample_table();
        t.create_index(ColId::new(0)).unwrap();
        let s = t.subset(TableId::new(9), "t_sample", &[0, 2]).unwrap();
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.column(ColId::new(0)).unwrap().data(), &[1, 2]);
        assert_eq!(s.column(ColId::new(1)).unwrap().data(), &[10, 21]);
        // Index was rebuilt on the subset.
        assert_eq!(s.index(ColId::new(0)).unwrap().probe(2), &[1]);
    }

    #[test]
    fn append_extends_columns_and_indexes_bit_identically() {
        let mut t = sample_table();
        t.create_index(ColId::new(0)).unwrap();
        let appended = t
            .append_rows(
                &[
                    vec![Value::Int(2), Value::Int(22)],
                    vec![Value::Null, Value::Int(40)],
                ],
                DataVersion::new(1),
            )
            .unwrap();
        assert_eq!(appended, 2);
        assert_eq!(t.row_count(), 6);
        assert_eq!(t.version(), DataVersion::new(1));
        assert_eq!(t.last_rewrite(), DataVersion::ZERO);
        assert_eq!(
            t.column(ColId::new(0)).unwrap().data(),
            &[1, 2, 2, 3, 2, NULL_SENTINEL]
        );
        // The incrementally-extended index matches a from-scratch build.
        let fresh = HashIndex::build(t.column(ColId::new(0)).unwrap().data());
        assert_eq!(t.index(ColId::new(0)).unwrap().probe(2), fresh.probe(2));
        assert_eq!(t.index(ColId::new(0)).unwrap().probe(2), &[1, 2, 4]);
        assert_eq!(
            t.index(ColId::new(0)).unwrap().distinct_keys(),
            fresh.distinct_keys()
        );
    }

    #[test]
    fn append_is_atomic_on_invalid_rows() {
        let mut t = sample_table();
        // Second row has the wrong arity: nothing must change.
        let err = t.append_rows(
            &[vec![Value::Int(1), Value::Int(2)], vec![Value::Int(3)]],
            DataVersion::new(1),
        );
        assert!(err.is_err());
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.version(), DataVersion::ZERO);
        // Type mismatch likewise.
        assert!(t
            .append_rows(
                &[vec![Value::from("x"), Value::Int(2)]],
                DataVersion::new(1)
            )
            .is_err());
        assert_eq!(t.row_count(), 4);
    }

    #[test]
    fn appended_dict_strings_intern_like_a_fresh_build() {
        let schema = TableSchema::new(vec![ColumnDef::new("s", LogicalType::Dict)]).unwrap();
        let mut t = Table::new(
            TableId::new(0),
            "d",
            schema.clone(),
            vec![Column::from_strings(&["ASIA", "EUROPE"])],
        )
        .unwrap();
        t.append_rows(
            &[
                vec![Value::from("ASIA")],
                vec![Value::from("AFRICA")],
                vec![Value::Null],
            ],
            DataVersion::new(1),
        )
        .unwrap();
        let fresh = Column::from_strings(&["ASIA", "EUROPE", "ASIA", "AFRICA"]);
        let got = t.column(ColId::new(0)).unwrap();
        assert_eq!(&got.data()[..4], fresh.data());
        assert_eq!(got.data()[4], NULL_SENTINEL);
        assert_eq!(got.value(3), Value::from("AFRICA"));
    }

    #[test]
    fn delete_rewrites_and_dirty_tail_tracks_history() {
        let mut t = sample_table();
        t.create_index(ColId::new(0)).unwrap();
        // Append-only history: the old prefix is clean.
        t.append_rows(&[vec![Value::Int(5), Value::Int(50)]], DataVersion::new(1))
            .unwrap();
        assert_eq!(t.dirty_tail(DataVersion::ZERO, 4), Some(4..5));
        assert_eq!(t.dirty_tail(DataVersion::new(1), 5), Some(5..5));
        let deleted = t
            .delete_where(ColId::new(0), |v| v == 2, DataVersion::new(2))
            .unwrap();
        assert_eq!(deleted, 2);
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column(ColId::new(0)).unwrap().data(), &[1, 3, 5]);
        assert_eq!(t.last_rewrite(), DataVersion::new(2));
        // Indexes were rebuilt on the compacted rows.
        assert_eq!(t.index(ColId::new(0)).unwrap().probe(3), &[1]);
        assert_eq!(t.index(ColId::new(0)).unwrap().probe(2), &[] as &[u32]);
        // Observers from before the rewrite must re-scan in full...
        assert_eq!(t.dirty_tail(DataVersion::new(1), 5), None);
        // ...observers from at/after it can tail-scan again.
        assert_eq!(t.dirty_tail(DataVersion::new(2), 3), Some(3..3));
        // An inconsistent prior row count is rejected.
        assert_eq!(t.dirty_tail(DataVersion::new(2), 9), None);
    }

    #[test]
    fn expiry_requires_an_ordered_column() {
        let schema = TableSchema::new(vec![ColumnDef::new("s", LogicalType::Dict)]).unwrap();
        let mut t = Table::new(
            TableId::new(0),
            "d",
            schema,
            vec![Column::from_strings(&["a", "b"])],
        )
        .unwrap();
        assert!(t
            .expire_older_than(ColId::new(0), 10, DataVersion::new(1))
            .is_err());
        // NULLs never expire.
        let mut t2 = sample_table();
        t2.append_rows(&[vec![Value::Null, Value::Null]], DataVersion::new(1))
            .unwrap();
        let expired = t2
            .expire_older_than(ColId::new(0), 3, DataVersion::new(2))
            .unwrap();
        assert_eq!(expired, 3); // values 1, 2, 2 — the NULL row survives
        assert_eq!(t2.row_count(), 2);
    }

    #[test]
    fn heap_pages_scale_with_rows() {
        let t = sample_table();
        assert_eq!(t.heap_pages(), 1);
        // 4 rows * 16 bytes = 64 bytes -> 1 page of 8192.
        assert_eq!(t.page_size(), 8192);
    }
}
