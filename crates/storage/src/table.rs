//! Tables: schema + columns + optional hash indexes.

use crate::column::Column;
use crate::page::{pages_for, PAGE_SIZE};
use crate::schema::TableSchema;
use crate::value::NULL_SENTINEL;
use reopt_common::{ColId, Error, FxHashMap, Result, TableId};

/// An equality (hash) index over one column: value → row ids.
///
/// This models a B-tree/hash index on the base table; the optimizer's
/// index-nested-loop access path and the executor's index probes both use
/// it. NULLs are not indexed.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: FxHashMap<i64, Vec<u32>>,
}

impl HashIndex {
    /// Build over a raw column.
    pub fn build(data: &[i64]) -> Self {
        let mut map: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
        for (row, &v) in data.iter().enumerate() {
            if v != NULL_SENTINEL {
                map.entry(v).or_default().push(row as u32);
            }
        }
        HashIndex { map }
    }

    /// Rows matching `value` (empty slice when absent).
    pub fn probe(&self, value: i64) -> &[u32] {
        self.map.get(&value).map_or(&[], |v| v.as_slice())
    }

    /// Number of distinct indexed keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// A stored base table.
#[derive(Debug, Clone)]
pub struct Table {
    id: TableId,
    name: String,
    schema: TableSchema,
    columns: Vec<Column>,
    indexes: FxHashMap<ColId, HashIndex>,
    row_count: usize,
}

impl Table {
    /// Assemble a table from columns. All columns must match the schema's
    /// arity and have equal lengths.
    pub fn new(
        id: TableId,
        name: impl Into<String>,
        schema: TableSchema,
        columns: Vec<Column>,
    ) -> Result<Self> {
        let name = name.into();
        if columns.len() != schema.arity() {
            return Err(Error::invalid(format!(
                "table `{name}`: {} columns supplied for arity-{} schema",
                columns.len(),
                schema.arity()
            )));
        }
        let row_count = columns.first().map_or(0, Column::len);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != row_count {
                return Err(Error::invalid(format!(
                    "table `{name}`: column {i} has {} rows, expected {row_count}",
                    c.len()
                )));
            }
            let declared = schema.column(ColId::from(i))?.ty;
            if c.ty() != declared {
                return Err(Error::invalid(format!(
                    "table `{name}`: column {i} is {:?}, schema declares {declared:?}",
                    c.ty()
                )));
            }
        }
        Ok(Table {
            id,
            name,
            schema,
            columns,
            indexes: FxHashMap::default(),
            row_count,
        })
    }

    /// Catalog identifier.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column accessor.
    pub fn column(&self, col: ColId) -> Result<&Column> {
        self.columns
            .get(col.index())
            .ok_or_else(|| Error::not_found(format!("table `{}` column {col}", self.name)))
    }

    /// Column accessor by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let id = self.schema.col_by_name(name)?;
        self.column(id)
    }

    /// Create (or rebuild) a hash index over `col`.
    pub fn create_index(&mut self, col: ColId) -> Result<()> {
        let data = self.column(col)?.data();
        let idx = HashIndex::build(data);
        self.indexes.insert(col, idx);
        Ok(())
    }

    /// The index over `col`, if one exists.
    pub fn index(&self, col: ColId) -> Option<&HashIndex> {
        self.indexes.get(&col)
    }

    /// Whether `col` is indexed.
    pub fn has_index(&self, col: ColId) -> bool {
        self.indexes.contains_key(&col)
    }

    /// Heap pages occupied by this table (see [`crate::page`]).
    pub fn heap_pages(&self) -> u64 {
        pages_for(self.row_count as u64, self.schema.row_width())
    }

    /// Bytes per page, re-exported for cost-model readability.
    pub fn page_size(&self) -> u64 {
        PAGE_SIZE
    }

    /// Derive a new table holding only `rows` (used to materialize sample
    /// tables). Indexes are rebuilt on the sampled data for the columns that
    /// were indexed on the parent.
    pub fn subset(&self, id: TableId, name: impl Into<String>, rows: &[u32]) -> Result<Table> {
        let columns = self
            .columns
            .iter()
            .map(|c| match c.dict() {
                Some(d) => Column::from_codes(c.gather(rows), d.clone()),
                None => Column::from_i64(c.ty(), c.gather(rows)),
            })
            .collect();
        let mut t = Table::new(id, name, self.schema.clone(), columns)?;
        for col in self.indexes.keys() {
            t.create_index(*col)?;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, LogicalType};

    fn sample_table() -> Table {
        let schema = TableSchema::new(vec![
            ColumnDef::new("k", LogicalType::Int),
            ColumnDef::new("v", LogicalType::Int),
        ])
        .unwrap();
        Table::new(
            TableId::new(0),
            "t",
            schema,
            vec![
                Column::from_i64(LogicalType::Int, vec![1, 2, 2, 3]),
                Column::from_i64(LogicalType::Int, vec![10, 20, 21, 30]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        let schema = TableSchema::new(vec![ColumnDef::new("k", LogicalType::Int)]).unwrap();
        // Wrong arity.
        assert!(Table::new(TableId::new(0), "t", schema.clone(), vec![]).is_err());
        // Ragged columns.
        let schema2 = TableSchema::new(vec![
            ColumnDef::new("a", LogicalType::Int),
            ColumnDef::new("b", LogicalType::Int),
        ])
        .unwrap();
        assert!(Table::new(
            TableId::new(0),
            "t",
            schema2,
            vec![
                Column::from_i64(LogicalType::Int, vec![1]),
                Column::from_i64(LogicalType::Int, vec![1, 2]),
            ],
        )
        .is_err());
        // Type mismatch.
        assert!(Table::new(
            TableId::new(0),
            "t",
            schema,
            vec![Column::from_i64(LogicalType::Date, vec![1])],
        )
        .is_err());
    }

    #[test]
    fn index_probe() {
        let mut t = sample_table();
        t.create_index(ColId::new(0)).unwrap();
        let idx = t.index(ColId::new(0)).unwrap();
        assert_eq!(idx.probe(2), &[1, 2]);
        assert_eq!(idx.probe(9), &[] as &[u32]);
        assert_eq!(idx.distinct_keys(), 3);
        assert!(t.has_index(ColId::new(0)));
        assert!(!t.has_index(ColId::new(1)));
    }

    #[test]
    fn nulls_are_not_indexed() {
        let idx = HashIndex::build(&[5, NULL_SENTINEL, 5]);
        assert_eq!(idx.probe(5), &[0, 2]);
        assert_eq!(idx.probe(NULL_SENTINEL), &[] as &[u32]);
    }

    #[test]
    fn subset_preserves_schema_and_indexes() {
        let mut t = sample_table();
        t.create_index(ColId::new(0)).unwrap();
        let s = t.subset(TableId::new(9), "t_sample", &[0, 2]).unwrap();
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.column(ColId::new(0)).unwrap().data(), &[1, 2]);
        assert_eq!(s.column(ColId::new(1)).unwrap().data(), &[10, 21]);
        // Index was rebuilt on the subset.
        assert_eq!(s.index(ColId::new(0)).unwrap().probe(2), &[1]);
    }

    #[test]
    fn heap_pages_scale_with_rows() {
        let t = sample_table();
        assert_eq!(t.heap_pages(), 1);
        // 4 rows * 16 bytes = 64 bytes -> 1 page of 8192.
        assert_eq!(t.page_size(), 8192);
    }
}
