//! The database catalog: a set of named tables, plus the ingest API.
//!
//! Tables sit behind `Arc`s so a mutating database can be snapshotted for
//! free: cloning a [`Database`] clones the table *pointers*, and a later
//! mutation copies only the tables it touches ([`Arc::make_mut`]). A
//! serving layer hands each query a clone and keeps ingesting into its own
//! copy — in-flight queries keep reading the exact data state they were
//! admitted under (snapshot isolation at the whole-table granularity).
//!
//! Every mutation bumps the database's monotonic [`DataVersion`] and
//! stamps the touched table with it; see [`crate::version`] for how that
//! clock flows through statistics, samples and plan caches.

use std::sync::Arc;

use crate::table::Table;
use crate::value::Value;
use crate::version::DataVersion;
use reopt_common::{ColId, Error, FxHashMap, Result, TableId};

/// An in-memory database: tables addressable by id or name.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: Vec<Arc<Table>>,
    by_name: FxHashMap<String, TableId>,
    version: DataVersion,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The version of the last mutation; [`DataVersion::ZERO`] for a
    /// freshly built database that never ingested anything. Registering
    /// tables and creating indexes do not count as mutations — the clock
    /// tracks *data* changes, which is what statistics and sample caches
    /// depend on.
    pub fn data_version(&self) -> DataVersion {
        self.version
    }

    /// Next table id to be assigned by [`Database::add_table_with`].
    pub fn next_table_id(&self) -> TableId {
        TableId::from(self.tables.len())
    }

    /// Register a fully-built table. Its id must equal
    /// [`Database::next_table_id`] and its name must be fresh.
    pub fn add_table(&mut self, table: Table) -> Result<TableId> {
        if table.id() != self.next_table_id() {
            return Err(Error::invalid(format!(
                "table `{}` has id {}, expected {}",
                table.name(),
                table.id(),
                self.next_table_id()
            )));
        }
        if self.by_name.contains_key(table.name()) {
            return Err(Error::invalid(format!(
                "duplicate table name `{}`",
                table.name()
            )));
        }
        let id = table.id();
        self.by_name.insert(table.name().to_owned(), id);
        self.tables.push(Arc::new(table));
        Ok(id)
    }

    /// Build-and-register: the closure receives the id the table must use.
    pub fn add_table_with<F>(&mut self, build: F) -> Result<TableId>
    where
        F: FnOnce(TableId) -> Result<Table>,
    {
        let id = self.next_table_id();
        let table = build(id)?;
        self.add_table(table)
    }

    /// Table by id.
    pub fn table(&self, id: TableId) -> Result<&Table> {
        self.tables
            .get(id.index())
            .map(|t| t.as_ref())
            .ok_or_else(|| Error::not_found(format!("table {id}")))
    }

    /// The shared handle for `id` — lets callers check sharing across
    /// copy-on-write snapshots via `Arc::ptr_eq`.
    pub fn table_arc(&self, id: TableId) -> Result<Arc<Table>> {
        self.tables
            .get(id.index())
            .cloned()
            .ok_or_else(|| Error::not_found(format!("table {id}")))
    }

    /// Mutable table by id (index creation). Copy-on-write: if the table is
    /// shared with a snapshot, it is cloned first.
    pub fn table_mut(&mut self, id: TableId) -> Result<&mut Table> {
        self.tables
            .get_mut(id.index())
            .map(Arc::make_mut)
            .ok_or_else(|| Error::not_found(format!("table {id}")))
    }

    /// Table by name.
    pub fn table_by_name(&self, name: &str) -> Result<&Table> {
        let id = self
            .by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::not_found(format!("table `{name}`")))?;
        self.table(id)
    }

    /// Id of the table named `name`.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::not_found(format!("table `{name}`")))
    }

    /// All tables in id order.
    pub fn tables(&self) -> &[Arc<Table>] {
        &self.tables
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no table is registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total rows across all tables (diagnostics).
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.row_count()).sum()
    }

    /// Swap in a fully-rebuilt `table` over the slot its id names. The
    /// replacement must keep the registered name — this is a catalog-level
    /// swap (the sample store's per-table refresh), not a rename. The
    /// version clock is deliberately untouched: it tracks mutations of
    /// *this* database's data, while a replacement carries whatever
    /// versioning its builder derived elsewhere.
    pub fn replace_table(&mut self, table: Table) -> Result<()> {
        let slot = self
            .tables
            .get_mut(table.id().index())
            .ok_or_else(|| Error::not_found(format!("table {}", table.id())))?;
        if slot.name() != table.name() {
            return Err(Error::invalid(format!(
                "replace_table would rename `{}` to `{}`",
                slot.name(),
                table.name()
            )));
        }
        *slot = Arc::new(table);
        Ok(())
    }

    /// Append a batch of typed rows to `table`, bumping the database
    /// version and stamping the table with it. The batch is validated
    /// before anything mutates (see [`Table::append_rows`]), so an invalid
    /// row leaves both the table and the version clock untouched. Returns
    /// the version the append landed at.
    pub fn append_rows(&mut self, table: TableId, rows: &[Vec<Value>]) -> Result<DataVersion> {
        let stamp = self.version.next();
        let t = self
            .tables
            .get_mut(table.index())
            .ok_or_else(|| Error::not_found(format!("table {table}")))?;
        Arc::make_mut(t).append_rows(rows, stamp)?;
        self.version = stamp;
        Ok(stamp)
    }

    /// Delete every row of `table` whose raw value in `col` satisfies
    /// `pred` (an in-place rewrite; see [`Table::delete_where`]). Returns
    /// the new version and the number of rows deleted.
    pub fn delete_where<F: Fn(i64) -> bool>(
        &mut self,
        table: TableId,
        col: ColId,
        pred: F,
    ) -> Result<(DataVersion, usize)> {
        let stamp = self.version.next();
        let t = self
            .tables
            .get_mut(table.index())
            .ok_or_else(|| Error::not_found(format!("table {table}")))?;
        let deleted = Arc::make_mut(t).delete_where(col, pred, stamp)?;
        self.version = stamp;
        Ok((stamp, deleted))
    }

    /// TTL expiry: delete every row of `table` whose value in the ordered
    /// column `col` is non-NULL and strictly below `cutoff`. Returns the
    /// new version and the number of rows expired.
    pub fn expire_older_than(
        &mut self,
        table: TableId,
        col: ColId,
        cutoff: i64,
    ) -> Result<(DataVersion, usize)> {
        let stamp = self.version.next();
        let t = self
            .tables
            .get_mut(table.index())
            .ok_or_else(|| Error::not_found(format!("table {table}")))?;
        let deleted = Arc::make_mut(t).expire_older_than(col, cutoff, stamp)?;
        self.version = stamp;
        Ok((stamp, deleted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::{ColumnDef, LogicalType, TableSchema};

    fn tiny_table(id: TableId, name: &str) -> Table {
        let schema = TableSchema::new(vec![ColumnDef::new("k", LogicalType::Int)]).unwrap();
        Table::new(
            id,
            name,
            schema,
            vec![Column::from_i64(LogicalType::Int, vec![1, 2, 3])],
        )
        .unwrap()
    }

    #[test]
    fn add_and_lookup() {
        let mut db = Database::new();
        let id = db.add_table_with(|id| Ok(tiny_table(id, "a"))).unwrap();
        assert_eq!(db.table(id).unwrap().name(), "a");
        assert_eq!(db.table_by_name("a").unwrap().id(), id);
        assert_eq!(db.table_id("a").unwrap(), id);
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
        assert_eq!(db.total_rows(), 3);
        // Registering tables is not a data mutation.
        assert_eq!(db.data_version(), DataVersion::ZERO);
    }

    #[test]
    fn rejects_duplicates_and_bad_ids() {
        let mut db = Database::new();
        db.add_table_with(|id| Ok(tiny_table(id, "a"))).unwrap();
        // Duplicate name.
        assert!(db.add_table_with(|id| Ok(tiny_table(id, "a"))).is_err());
        // Wrong id.
        assert!(db.add_table(tiny_table(TableId::new(7), "b")).is_err());
    }

    #[test]
    fn missing_lookups_error() {
        let db = Database::new();
        assert!(db.table(TableId::new(0)).is_err());
        assert!(db.table_by_name("a").is_err());
        assert!(db.table_id("a").is_err());
    }

    #[test]
    fn append_bumps_version_and_stamps_table() {
        let mut db = Database::new();
        let id = db.add_table_with(|id| Ok(tiny_table(id, "a"))).unwrap();
        let v1 = db.append_rows(id, &[vec![Value::Int(4)]]).unwrap();
        assert_eq!(v1, DataVersion::new(1));
        assert_eq!(db.data_version(), v1);
        let t = db.table(id).unwrap();
        assert_eq!(t.version(), v1);
        assert_eq!(t.last_rewrite(), DataVersion::ZERO);
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.column(ColId::new(0)).unwrap().data(), &[1, 2, 3, 4]);
    }

    #[test]
    fn failed_append_leaves_version_untouched() {
        let mut db = Database::new();
        let id = db.add_table_with(|id| Ok(tiny_table(id, "a"))).unwrap();
        // Wrong arity: rejected atomically.
        assert!(db.append_rows(id, &[vec![]]).is_err());
        assert_eq!(db.data_version(), DataVersion::ZERO);
        assert_eq!(db.table(id).unwrap().row_count(), 3);
        // Unknown table: ditto.
        assert!(db.append_rows(TableId::new(9), &[]).is_err());
        assert_eq!(db.data_version(), DataVersion::ZERO);
    }

    #[test]
    fn replace_table_swaps_without_touching_the_clock() {
        let mut db = Database::new();
        let id = db.add_table_with(|id| Ok(tiny_table(id, "a"))).unwrap();
        db.append_rows(id, &[vec![Value::Int(4)]]).unwrap();
        let v = db.data_version();
        let rebuilt = tiny_table(id, "a");
        db.replace_table(rebuilt).unwrap();
        assert_eq!(db.table(id).unwrap().row_count(), 3);
        assert_eq!(db.data_version(), v, "replace is not a data mutation");
        assert_eq!(db.table_by_name("a").unwrap().id(), id);
        // Unknown slot and renames are rejected.
        assert!(db.replace_table(tiny_table(TableId::new(7), "x")).is_err());
        assert!(db.replace_table(tiny_table(id, "renamed")).is_err());
    }

    #[test]
    fn mutation_does_not_disturb_snapshots() {
        let mut db = Database::new();
        let id = db.add_table_with(|id| Ok(tiny_table(id, "a"))).unwrap();
        let snapshot = db.clone();
        db.append_rows(id, &[vec![Value::Int(9)]]).unwrap();
        let (_, deleted) = db.delete_where(id, ColId::new(0), |v| v == 1).unwrap();
        assert_eq!(deleted, 1);
        // The snapshot still sees the original three rows at version zero.
        assert_eq!(snapshot.table(id).unwrap().row_count(), 3);
        assert_eq!(snapshot.data_version(), DataVersion::ZERO);
        assert_eq!(db.table(id).unwrap().row_count(), 3); // 4 - 1
        assert_eq!(db.data_version(), DataVersion::new(2));
        assert_eq!(db.table(id).unwrap().last_rewrite(), DataVersion::new(2));
    }

    #[test]
    fn expiry_drops_old_rows() {
        let mut db = Database::new();
        let id = db
            .add_table_with(|id| {
                let schema =
                    TableSchema::new(vec![ColumnDef::new("day", LogicalType::Date)]).unwrap();
                Table::new(
                    id,
                    "events",
                    schema,
                    vec![Column::from_i64(LogicalType::Date, vec![10, 20, 30])],
                )
            })
            .unwrap();
        let (v, expired) = db.expire_older_than(id, ColId::new(0), 25).unwrap();
        assert_eq!(expired, 2);
        assert_eq!(v, DataVersion::new(1));
        assert_eq!(
            db.table(id).unwrap().column(ColId::new(0)).unwrap().data(),
            &[30]
        );
    }
}
