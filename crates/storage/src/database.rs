//! The database catalog: a set of named tables.

use crate::table::Table;
use reopt_common::{Error, FxHashMap, Result, TableId};

/// An in-memory database: tables addressable by id or name.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: Vec<Table>,
    by_name: FxHashMap<String, TableId>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next table id to be assigned by [`Database::add_table_with`].
    pub fn next_table_id(&self) -> TableId {
        TableId::from(self.tables.len())
    }

    /// Register a fully-built table. Its id must equal
    /// [`Database::next_table_id`] and its name must be fresh.
    pub fn add_table(&mut self, table: Table) -> Result<TableId> {
        if table.id() != self.next_table_id() {
            return Err(Error::invalid(format!(
                "table `{}` has id {}, expected {}",
                table.name(),
                table.id(),
                self.next_table_id()
            )));
        }
        if self.by_name.contains_key(table.name()) {
            return Err(Error::invalid(format!(
                "duplicate table name `{}`",
                table.name()
            )));
        }
        let id = table.id();
        self.by_name.insert(table.name().to_owned(), id);
        self.tables.push(table);
        Ok(id)
    }

    /// Build-and-register: the closure receives the id the table must use.
    pub fn add_table_with<F>(&mut self, build: F) -> Result<TableId>
    where
        F: FnOnce(TableId) -> Result<Table>,
    {
        let id = self.next_table_id();
        let table = build(id)?;
        self.add_table(table)
    }

    /// Table by id.
    pub fn table(&self, id: TableId) -> Result<&Table> {
        self.tables
            .get(id.index())
            .ok_or_else(|| Error::not_found(format!("table {id}")))
    }

    /// Mutable table by id (index creation).
    pub fn table_mut(&mut self, id: TableId) -> Result<&mut Table> {
        self.tables
            .get_mut(id.index())
            .ok_or_else(|| Error::not_found(format!("table {id}")))
    }

    /// Table by name.
    pub fn table_by_name(&self, name: &str) -> Result<&Table> {
        let id = self
            .by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::not_found(format!("table `{name}`")))?;
        self.table(id)
    }

    /// Id of the table named `name`.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::not_found(format!("table `{name}`")))
    }

    /// All tables in id order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no table is registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total rows across all tables (diagnostics).
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::row_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::{ColumnDef, LogicalType, TableSchema};

    fn tiny_table(id: TableId, name: &str) -> Table {
        let schema = TableSchema::new(vec![ColumnDef::new("k", LogicalType::Int)]).unwrap();
        Table::new(
            id,
            name,
            schema,
            vec![Column::from_i64(LogicalType::Int, vec![1, 2, 3])],
        )
        .unwrap()
    }

    #[test]
    fn add_and_lookup() {
        let mut db = Database::new();
        let id = db.add_table_with(|id| Ok(tiny_table(id, "a"))).unwrap();
        assert_eq!(db.table(id).unwrap().name(), "a");
        assert_eq!(db.table_by_name("a").unwrap().id(), id);
        assert_eq!(db.table_id("a").unwrap(), id);
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
        assert_eq!(db.total_rows(), 3);
    }

    #[test]
    fn rejects_duplicates_and_bad_ids() {
        let mut db = Database::new();
        db.add_table_with(|id| Ok(tiny_table(id, "a"))).unwrap();
        // Duplicate name.
        assert!(db.add_table_with(|id| Ok(tiny_table(id, "a"))).is_err());
        // Wrong id.
        assert!(db.add_table(tiny_table(TableId::new(7), "b")).is_err());
    }

    #[test]
    fn missing_lookups_error() {
        let db = Database::new();
        assert!(db.table(TableId::new(0)).is_err());
        assert!(db.table_by_name("a").is_err());
        assert!(db.table_id("a").is_err());
    }
}
