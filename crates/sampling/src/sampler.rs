//! Sample-table construction.
//!
//! The paper keeps one offline sample per base table (5% in all
//! experiments, following Wu et al. 2013) and runs tentative plans over
//! them. [`SampleStore`] materializes Bernoulli row samples as a *parallel
//! database*: sample tables carry the same [`TableId`]s as their parents,
//! so any physical plan valid on the base database executes unchanged on
//! the sample database — including index scans, because indexes are
//! rebuilt on the sampled rows.

use rand::RngExt;
use reopt_common::rng::derive_rng;
use reopt_common::{Error, FxHashMap, Result, TableId};
use reopt_storage::{DataVersion, Database, Table};

/// Sampling configuration.
#[derive(Debug, Clone)]
pub struct SampleConfig {
    /// Sampling ratio in (0, 1]; the paper uses 0.05.
    pub ratio: f64,
    /// Tables with at most this many rows are copied whole (sampling a
    /// 25-row dimension table would only add noise).
    pub small_table_rows: usize,
    /// Seed for the Bernoulli draws.
    pub seed: u64,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            ratio: 0.05,
            small_table_rows: 200,
            seed: 0x5a3b1e,
        }
    }
}

/// Per-table samples materialized as a parallel [`Database`].
#[derive(Debug, Clone)]
pub struct SampleStore {
    sample_db: Database,
    /// `full_rows / sample_rows` keyed by the *base* table's id (1.0 for
    /// full copies and empty tables).
    scale: FxHashMap<TableId, f64>,
    config: SampleConfig,
    /// The base database's [`DataVersion`] at draw time — samples describe
    /// exactly that data state, and every cache keyed off this store
    /// qualifies its entries with it.
    data_version: DataVersion,
}

impl SampleStore {
    /// Draw Bernoulli samples of every table in `db`.
    ///
    /// Invariant: for every sampled table,
    /// `scale_factor(t) × sample_rows(t) == row_count(t)` exactly — the
    /// scale is recomputed from the *materialized* sample, and a Bernoulli
    /// draw that would come back empty retains one uniformly chosen row
    /// instead (a 0-row sample with a finite scale would silently disagree
    /// with the stored table).
    pub fn build(db: &Database, config: SampleConfig) -> Result<SampleStore> {
        assert!(
            config.ratio > 0.0 && config.ratio <= 1.0,
            "sampling ratio must be in (0, 1]"
        );
        let mut sample_db = Database::new();
        let mut scale: FxHashMap<TableId, f64> = FxHashMap::default();
        for table in db.tables() {
            let (rows, factor) = draw_rows(table, &config);
            scale.insert(table.id(), factor);
            let name = format!("{}__sample", table.name());
            sample_db.add_table_with(|id| table.subset(id, name, &rows))?;
        }
        Ok(SampleStore {
            sample_db,
            scale,
            config,
            data_version: db.data_version(),
        })
    }

    /// Redraw samples for `tables` only, reusing every other table's
    /// sample `Arc` verbatim — the serving layer's surgical reaction to
    /// per-table drift. The draw is the same seed-derived Bernoulli as
    /// [`SampleStore::build`], so a refreshed table's sample is
    /// bit-identical to what a full rebuild over `db` would produce.
    ///
    /// The returned store is stamped with `db`'s current [`DataVersion`];
    /// untouched tables keep describing the data state they were drawn at,
    /// which is exactly the under-threshold staleness the drift monitor
    /// already tolerates for them.
    pub fn refresh_tables(&self, db: &Database, tables: &[TableId]) -> Result<SampleStore> {
        let mut sample_db = self.sample_db.clone();
        let mut scale = self.scale.clone();
        let mut todo: Vec<TableId> = tables.to_vec();
        todo.sort_unstable();
        todo.dedup();
        for &tid in &todo {
            let table = db.table(tid)?;
            let (rows, factor) = draw_rows(table, &self.config);
            // Sample tables carry their base table's id and a derived
            // name; both must already exist — refreshing a table the
            // store never sampled is a caller bug, not a growth path.
            let name = sample_db.table(tid)?.name().to_owned();
            sample_db.replace_table(table.subset(tid, name, &rows)?)?;
            scale.insert(tid, factor);
        }
        Ok(SampleStore {
            sample_db,
            scale,
            config: self.config.clone(),
            data_version: db.data_version(),
        })
    }

    /// The sample database (table ids parallel the base database).
    pub fn database(&self) -> &Database {
        &self.sample_db
    }

    /// Scale factor `|R| / |R^s|` for `table`. Errors on a table the store
    /// never sampled — silently returning 1.0 would quietly skip scaling.
    pub fn scale_factor(&self, table: TableId) -> Result<f64> {
        self.scale
            .get(&table)
            .copied()
            .ok_or_else(|| Error::invalid(format!("no sample scale recorded for table {table}")))
    }

    /// Number of sampled rows of `table`.
    pub fn sample_rows(&self, table: TableId) -> Result<usize> {
        Ok(self.sample_db.table(table)?.row_count())
    }

    /// The configuration used to build this store.
    pub fn config(&self) -> &SampleConfig {
        &self.config
    }

    /// The base database's [`DataVersion`] these samples were drawn at.
    pub fn data_version(&self) -> DataVersion {
        self.data_version
    }
}

/// One table's Bernoulli draw: the retained row indices plus the exact
/// scale factor `full_rows / sample_rows` (1.0 for full copies and empty
/// tables). Deterministic per `(seed, table name)`, so redrawing a single
/// table reproduces exactly what a whole-database build would draw for it.
fn draw_rows(table: &Table, config: &SampleConfig) -> (Vec<u32>, f64) {
    let full_rows = table.row_count();
    let rows: Vec<u32> = if full_rows <= config.small_table_rows || config.ratio >= 1.0 {
        (0..full_rows as u32).collect()
    } else {
        let mut rng = derive_rng(config.seed, &format!("sample:{}", table.name()));
        let mut drawn: Vec<u32> = (0..full_rows as u32)
            .filter(|_| rng.random_bool(config.ratio))
            .collect();
        if drawn.is_empty() {
            // Tiny ratios can draw nothing; keep one row so the
            // scale invariant holds against the materialized table.
            drawn.push(rng.random_range(0..full_rows as u32));
        }
        drawn
    };
    let factor = if rows.is_empty() {
        1.0 // empty base table: empty sample, nothing to scale
    } else {
        full_rows as f64 / rows.len() as f64
    };
    (rows, factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::ColId;
    use reopt_storage::{Column, ColumnDef, LogicalType, Table, TableSchema};

    fn db_with_rows(n: i64) -> Database {
        let mut db = Database::new();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![ColumnDef::new("k", LogicalType::Int)])?;
            let mut t = Table::new(
                id,
                "t",
                schema,
                vec![Column::from_i64(LogicalType::Int, (0..n).collect())],
            )?;
            t.create_index(ColId::new(0))?;
            Ok(t)
        })
        .unwrap();
        db
    }

    #[test]
    fn sample_size_tracks_ratio() {
        let db = db_with_rows(100_000);
        let store = SampleStore::build(&db, SampleConfig::default()).unwrap();
        let n = store.sample_rows(TableId::new(0)).unwrap();
        // 5% of 100k = 5000 ± noise.
        assert!((4000..6000).contains(&n), "sample of {n} rows");
        let s = store.scale_factor(TableId::new(0)).unwrap();
        assert!((s - 100_000.0 / n as f64).abs() < 1e-9);
    }

    #[test]
    fn small_tables_are_copied_whole() {
        let db = db_with_rows(150);
        let store = SampleStore::build(&db, SampleConfig::default()).unwrap();
        assert_eq!(store.sample_rows(TableId::new(0)).unwrap(), 150);
        assert_eq!(store.scale_factor(TableId::new(0)).unwrap(), 1.0);
    }

    #[test]
    fn empty_draw_forces_one_retained_row() {
        // 1000 rows at ratio 1e-12: the Bernoulli draw is (essentially
        // always) empty, but the store must still keep ≥ 1 row and record
        // a scale that matches the materialized table exactly.
        let db = db_with_rows(1000);
        let store = SampleStore::build(
            &db,
            SampleConfig {
                ratio: 1e-12,
                ..SampleConfig::default()
            },
        )
        .unwrap();
        let n = store.sample_rows(TableId::new(0)).unwrap();
        assert!(n >= 1, "materialized sample is empty");
        let s = store.scale_factor(TableId::new(0)).unwrap();
        assert!(
            (s * n as f64 - 1000.0).abs() < 1e-9,
            "scale × sample_rows = {} ≠ full_rows 1000",
            s * n as f64
        );
    }

    #[test]
    fn scale_invariant_holds_for_every_table() {
        // scale × sample_rows == full_rows exactly, across table sizes.
        let mut db = Database::new();
        for (i, n) in [150i64, 1000, 50_000].iter().enumerate() {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![ColumnDef::new("k", LogicalType::Int)])?;
                Table::new(
                    id,
                    format!("t{i}"),
                    schema,
                    vec![Column::from_i64(LogicalType::Int, (0..*n).collect())],
                )
            })
            .unwrap();
        }
        let store = SampleStore::build(&db, SampleConfig::default()).unwrap();
        for (i, n) in [150usize, 1000, 50_000].iter().enumerate() {
            let id = TableId::from(i);
            let s = store.scale_factor(id).unwrap();
            let rows = store.sample_rows(id).unwrap();
            assert!(
                (s * rows as f64 - *n as f64).abs() < 1e-9,
                "table {i}: {s} × {rows} ≠ {n}"
            );
        }
    }

    #[test]
    fn unknown_table_id_is_an_error_not_a_silent_one() {
        let db = db_with_rows(1000);
        let store = SampleStore::build(&db, SampleConfig::default()).unwrap();
        // Table 0 exists; table 7 was never sampled.
        assert!(store.scale_factor(TableId::new(0)).is_ok());
        assert!(store.scale_factor(TableId::new(7)).is_err());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let db = db_with_rows(10_000);
        let a = SampleStore::build(&db, SampleConfig::default()).unwrap();
        let b = SampleStore::build(&db, SampleConfig::default()).unwrap();
        assert_eq!(
            a.database()
                .table(TableId::new(0))
                .unwrap()
                .column(ColId::new(0))
                .unwrap()
                .data(),
            b.database()
                .table(TableId::new(0))
                .unwrap()
                .column(ColId::new(0))
                .unwrap()
                .data()
        );
        let c = SampleStore::build(
            &db,
            SampleConfig {
                seed: 99,
                ..SampleConfig::default()
            },
        )
        .unwrap();
        assert_ne!(a.database().table(TableId::new(0)).unwrap().row_count(), 0);
        // Different seed almost surely draws a different sample.
        assert_ne!(
            a.database()
                .table(TableId::new(0))
                .unwrap()
                .column(ColId::new(0))
                .unwrap()
                .data(),
            c.database()
                .table(TableId::new(0))
                .unwrap()
                .column(ColId::new(0))
                .unwrap()
                .data()
        );
    }

    fn multi_table_db(sizes: &[i64]) -> Database {
        let mut db = Database::new();
        for (i, n) in sizes.iter().enumerate() {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![ColumnDef::new("k", LogicalType::Int)])?;
                let mut t = Table::new(
                    id,
                    format!("t{i}"),
                    schema,
                    vec![Column::from_i64(LogicalType::Int, (0..*n).collect())],
                )?;
                t.create_index(ColId::new(0))?;
                Ok(t)
            })
            .unwrap();
        }
        db
    }

    #[test]
    fn refresh_tables_matches_full_rebuild_bit_for_bit() {
        let mut db = multi_table_db(&[20_000, 20_000, 20_000]);
        let store = SampleStore::build(&db, SampleConfig::default()).unwrap();
        // Mutate table 1 only, then refresh just that table.
        let rows: Vec<Vec<reopt_storage::Value>> = (0..5000)
            .map(|_| vec![reopt_storage::Value::Int(7)])
            .collect();
        db.append_rows(TableId::new(1), &rows).unwrap();
        let surgical = store.refresh_tables(&db, &[TableId::new(1)]).unwrap();
        let full = SampleStore::build(&db, SampleConfig::default()).unwrap();
        for t in 0..3 {
            let id = TableId::new(t);
            assert_eq!(
                surgical
                    .database()
                    .table(id)
                    .unwrap()
                    .column(ColId::new(0))
                    .unwrap()
                    .data(),
                full.database()
                    .table(id)
                    .unwrap()
                    .column(ColId::new(0))
                    .unwrap()
                    .data(),
                "table {t} sample diverged from full rebuild"
            );
            assert_eq!(
                surgical.scale_factor(id).unwrap(),
                full.scale_factor(id).unwrap()
            );
        }
        assert_eq!(surgical.data_version(), db.data_version());
    }

    #[test]
    fn refresh_tables_reuses_untouched_arcs() {
        let db = multi_table_db(&[20_000, 20_000]);
        let store = SampleStore::build(&db, SampleConfig::default()).unwrap();
        let refreshed = store.refresh_tables(&db, &[TableId::new(0)]).unwrap();
        let old_t1 = store.database().table_arc(TableId::new(1)).unwrap();
        let new_t1 = refreshed.database().table_arc(TableId::new(1)).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&old_t1, &new_t1),
            "untouched table's sample Arc was rebuilt"
        );
        let old_t0 = store.database().table_arc(TableId::new(0)).unwrap();
        let new_t0 = refreshed.database().table_arc(TableId::new(0)).unwrap();
        assert!(
            !std::sync::Arc::ptr_eq(&old_t0, &new_t0),
            "refreshed table still shares its old sample Arc"
        );
        // Same data, same seed → same draw, even through the new Arc.
        assert_eq!(
            old_t0.column(ColId::new(0)).unwrap().data(),
            new_t0.column(ColId::new(0)).unwrap().data()
        );
    }

    #[test]
    fn refresh_of_unknown_table_errors() {
        let db = multi_table_db(&[1000]);
        let store = SampleStore::build(&db, SampleConfig::default()).unwrap();
        assert!(store.refresh_tables(&db, &[TableId::new(9)]).is_err());
    }

    #[test]
    fn indexes_survive_sampling() {
        let db = db_with_rows(100_000);
        let store = SampleStore::build(&db, SampleConfig::default()).unwrap();
        let t = store.database().table(TableId::new(0)).unwrap();
        assert!(t.has_index(ColId::new(0)));
    }

    #[test]
    fn full_ratio_copies_everything() {
        let db = db_with_rows(5000);
        let store = SampleStore::build(
            &db,
            SampleConfig {
                ratio: 1.0,
                ..SampleConfig::default()
            },
        )
        .unwrap();
        assert_eq!(store.sample_rows(TableId::new(0)).unwrap(), 5000);
    }
}
