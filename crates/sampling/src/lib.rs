//! Sampling subsystem: offline Bernoulli samples, the Haas et al. join
//! selectivity estimator (§2.1 of the paper), and plan validation — the
//! `GetCardinalityEstimatesBySampling` step of Algorithm 1. The [`cache`]
//! module adds cross-round dry-run caching for incremental
//! re-optimization, plus a thread-safe shared cache
//! ([`SharedSampleRunCache`]) that pools validated subtree estimates
//! across the concurrent sessions of a query service.

pub mod cache;
pub mod estimator;
pub mod sampler;
pub mod validator;

pub use cache::{
    subtree_fingerprint, SampleCacheStats, SampleRunCache, SharedSampleRunCache, ValidationCache,
};
pub use estimator::{cardinality_estimate, scale_up, selectivity_estimate};
pub use sampler::{SampleConfig, SampleStore};
pub use validator::{validate_plan, validate_plan_cached, Validation, ValidationOpts};
