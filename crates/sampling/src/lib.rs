//! Sampling subsystem: offline Bernoulli samples, the Haas et al. join
//! selectivity estimator (§2.1 of the paper), and plan validation — the
//! `GetCardinalityEstimatesBySampling` step of Algorithm 1.

pub mod estimator;
pub mod sampler;
pub mod validator;

pub use estimator::{cardinality_estimate, scale_up, selectivity_estimate};
pub use sampler::{SampleConfig, SampleStore};
pub use validator::{validate_plan, Validation, ValidationOpts};
