//! The sampling-based selectivity estimator of Haas et al. (§2.1).
//!
//! For a pure join `q = R1 ⋈ … ⋈ RK` with per-table samples `R^s_k`,
//!
//! ```text
//! ρ̂_q = |R^s_1 ⋈ … ⋈ R^s_K| / (|R^s_1| × … × |R^s_K|)
//! ```
//!
//! is unbiased and strongly consistent. The cardinality estimate is then
//! `ρ̂_q × Π|R_k|`, i.e. the sample join size multiplied by the product of
//! per-table scale factors `|R_k| / |R^s_k|` — the form used by the
//! validator, which also covers subtrees with selections pushed down.

/// Selectivity estimate ρ̂ from a sample join size and the sample sizes.
pub fn selectivity_estimate(sample_join_rows: u64, sample_sizes: &[usize]) -> f64 {
    let denom: f64 = sample_sizes.iter().map(|&s| s.max(1) as f64).product();
    sample_join_rows as f64 / denom
}

/// Scale a sample-join cardinality back to the full database:
/// `rows × Π scale_k`, clamped to at least `min_rows`.
pub fn scale_up(sample_rows: u64, scale_product: f64, min_rows: f64) -> f64 {
    (sample_rows as f64 * scale_product).max(min_rows)
}

/// Cardinality estimate for a pure K-way join from sample sizes and full
/// sizes (the textbook form; the validator uses [`scale_up`] directly).
pub fn cardinality_estimate(
    sample_join_rows: u64,
    sample_sizes: &[usize],
    full_sizes: &[usize],
) -> f64 {
    let rho = selectivity_estimate(sample_join_rows, sample_sizes);
    let cross: f64 = full_sizes.iter().map(|&s| s as f64).product();
    rho * cross
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use reopt_common::rng::derive_rng;

    #[test]
    fn selectivity_formula() {
        // 25 joined rows over samples of 50 × 50 = 2500 pairs -> 1%.
        let rho = selectivity_estimate(25, &[50, 50]);
        assert!((rho - 0.01).abs() < 1e-12);
    }

    #[test]
    fn scale_up_applies_product_and_clamp() {
        assert_eq!(scale_up(10, 400.0, 1.0), 4000.0);
        assert_eq!(scale_up(0, 400.0, 1.0), 1.0);
        assert_eq!(scale_up(0, 400.0, 0.0), 0.0);
    }

    #[test]
    fn cardinality_from_samples_matches_scale_up() {
        // scale = (1000/50) × (2000/100) = 20 × 20 = 400.
        let via_rho = cardinality_estimate(25, &[50, 100], &[1000, 2000]);
        let via_scale = scale_up(25, 400.0, 1.0);
        assert!((via_rho - via_scale).abs() < 1e-9);
    }

    /// Statistical check of unbiasedness: estimate a two-table equi-join's
    /// size from many independent Bernoulli samples; the mean estimate
    /// must approach the true size (Haas et al.'s guarantee).
    #[test]
    fn estimator_is_approximately_unbiased() {
        let n = 2000usize;
        // Key k appears (k % 5 + 1) times on each side -> true join size:
        let mut left: Vec<i64> = Vec::new();
        let mut right: Vec<i64> = Vec::new();
        for k in 0..400i64 {
            for _ in 0..(k % 5 + 1) {
                left.push(k);
                right.push(k);
            }
        }
        left.truncate(n.min(left.len()));
        right.truncate(n.min(right.len()));
        let truth: f64 = {
            let mut counts = std::collections::HashMap::new();
            for &v in &left {
                *counts.entry(v).or_insert(0u64) += 1;
            }
            right
                .iter()
                .map(|v| *counts.get(v).unwrap_or(&0) as f64)
                .sum()
        };

        let ratio = 0.1;
        let trials = 300;
        let mut sum_est = 0.0;
        let mut rng = derive_rng(7, "unbiased-test");
        for _ in 0..trials {
            let ls: Vec<i64> = left
                .iter()
                .copied()
                .filter(|_| rng.random_bool(ratio))
                .collect();
            let rs: Vec<i64> = right
                .iter()
                .copied()
                .filter(|_| rng.random_bool(ratio))
                .collect();
            let mut counts = std::collections::HashMap::new();
            for &v in &ls {
                *counts.entry(v).or_insert(0u64) += 1;
            }
            let join_rows: u64 = rs.iter().map(|v| *counts.get(v).unwrap_or(&0)).sum();
            let scale = (left.len() as f64 / ls.len().max(1) as f64)
                * (right.len() as f64 / rs.len().max(1) as f64);
            sum_est += scale_up(join_rows, scale, 0.0);
        }
        let mean = sum_est / trials as f64;
        let rel_err = (mean - truth).abs() / truth;
        assert!(
            rel_err < 0.1,
            "mean estimate {mean} vs truth {truth} (rel err {rel_err})"
        );
    }
}
