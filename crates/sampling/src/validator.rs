//! Plan validation: `GetCardinalityEstimatesBySampling(P)` of Algorithm 1.
//!
//! The plan is executed once over the sample database (a "dry run"); every
//! join subtree's observed cardinality is scaled back to the full database
//! by the product of the participating tables' sampling scale factors —
//! the Haas et al. estimator of §2.1 generalized to selection–join
//! subtrees. The result Δ maps each validated relation set to its
//! estimated full-size cardinality.

use std::time::Duration;

use crate::cache::{SampleRunCache, ValidationCache};
use crate::estimator::scale_up;
use crate::sampler::SampleStore;
use reopt_common::{FxHashMap, RelSet, Result};
use reopt_executor::{ExecOpts, Executor, TracedRun};
use reopt_optimizer::CardOverrides;
use reopt_plan::{PhysicalPlan, Query};
use reopt_telemetry::{names, Span, Tracer};

/// Validation options.
#[derive(Debug, Clone)]
pub struct ValidationOpts {
    /// Also validate single-relation (selection) cardinalities. The paper
    /// focuses sampling on join predicates (§2: "the major source of
    /// errors"), so this defaults to off; turning it on additionally
    /// repairs correlated *local* conjunctions.
    pub validate_leaves: bool,
    /// Minimum rows recorded for a validated set. PostgreSQL clamps all
    /// cardinalities to ≥ 1; keeping the clamp makes empty joins "almost
    /// free" rather than degenerate-zero in downstream cost arithmetic.
    pub min_rows: f64,
    /// Row cap for the dry run (samples are small; a blow-up here signals
    /// a catastrophic plan over the samples too).
    pub max_intermediate_rows: u64,
    /// Executor worker threads for the dry run (`0` = the machine's
    /// available parallelism, `1` = serial; see
    /// [`reopt_executor::ExecOpts::threads`]). Parallel dry runs are
    /// bit-identical to serial ones, so Δ is invariant under this knob —
    /// it only buys wall-clock, i.e. more re-optimization rounds per
    /// second.
    pub threads: usize,
    /// Columnar (batch-at-a-time) execution for the dry run. `None`
    /// defers to [`reopt_executor::default_columnar`] (the
    /// `REOPT_COLUMNAR` env knob, on by default); `Some(b)` pins the
    /// engine. Like `threads`, the engines are bit-identical, so Δ and
    /// the plan trajectory are invariant under this knob.
    pub columnar: Option<bool>,
    /// Span recorder for the dry run (`sampling.dry_run` plus nested
    /// `exec.operator` spans). Disabled by default; recording never feeds
    /// back into Δ, so validation results are invariant under this knob.
    pub tracer: Tracer,
}

impl Default for ValidationOpts {
    fn default() -> Self {
        ValidationOpts {
            validate_leaves: false,
            min_rows: 1.0,
            max_intermediate_rows: 50_000_000,
            threads: 0,
            columnar: None,
            tracer: Tracer::disabled(),
        }
    }
}

/// The outcome of validating one plan.
#[derive(Debug, Clone)]
pub struct Validation {
    /// Δ — validated cardinalities keyed by relation set.
    pub delta: CardOverrides,
    /// Wall time of the dry run.
    pub elapsed: Duration,
    /// Rows produced while running over the samples (overhead metric; a
    /// cached run only counts rows of the subtrees it actually executed).
    pub sample_rows_produced: u64,
    /// Subtrees answered from the dry-run cache ([`validate_plan_cached`]
    /// only; always 0 on the from-scratch path).
    pub cache_hits: usize,
    /// Subtrees executed fresh by this validation (from-scratch runs count
    /// every plan node here).
    pub subtrees_executed: usize,
}

/// Run `plan` over the samples and return Δ.
pub fn validate_plan(
    query: &Query,
    plan: &PhysicalPlan,
    samples: &SampleStore,
    opts: &ValidationOpts,
) -> Result<Validation> {
    let mut span = opts.tracer.span(names::SAMPLING_DRY_RUN);
    let exec = Executor::with_opts(
        samples.database(),
        ExecOpts {
            max_intermediate_rows: opts.max_intermediate_rows,
            threads: opts.threads,
            columnar: opts.columnar,
            tracer: opts.tracer.under(&span),
        },
    );
    let traced = exec.run_traced(query, plan)?;
    let executed = traced.node_cards.len();
    let v =
        build_validation::<SampleRunCache>(query, plan, samples, opts, traced, 0, executed, None)?;
    annotate_dry_run(&mut span, &v);
    Ok(v)
}

/// Attach the validation outcome to its `sampling.dry_run` span.
fn annotate_dry_run(span: &mut Span, v: &Validation) {
    if span.is_recording() {
        span.attr_u64("cache_hits", v.cache_hits as u64);
        span.attr_u64("subtrees_executed", v.subtrees_executed as u64);
        span.attr_u64("sample_rows", v.sample_rows_produced);
        span.attr_u64("delta_len", v.delta.len() as u64);
    }
}

/// Like [`validate_plan`], but consulting (and refilling) a cross-round
/// [`ValidationCache`] — the single-owner [`SampleRunCache`] or the
/// thread-safe [`crate::SharedSampleRunCache`]: subtrees whose canonical
/// fingerprint was executed before are replayed from the cache, and
/// subtrees whose full-database estimate was already derived are never
/// re-scaled. The cache must be used with one fixed (samples, opts) pair
/// only — recorded estimates bake in `opts.min_rows`, so changing options
/// requires a fresh cache (the intermediate-row cap is exempt: the
/// executor re-checks it on every replay). Sharing one cache across
/// *queries* of the same database is sound: entries are keyed by the
/// table-aware canonical fingerprint.
pub fn validate_plan_cached<C: ValidationCache>(
    query: &Query,
    plan: &PhysicalPlan,
    samples: &SampleStore,
    opts: &ValidationOpts,
    cache: &mut C,
) -> Result<Validation> {
    let mut span = opts.tracer.span(names::SAMPLING_DRY_RUN);
    // Qualify every cache operation with the samples' data version: a
    // dry-run recorded before an ingest is unreachable from lookups issued
    // against samples drawn after it (and vice versa), so a stale replay
    // is structurally impossible.
    cache.set_data_version(samples.data_version());
    let exec = Executor::with_opts(
        samples.database(),
        ExecOpts {
            max_intermediate_rows: opts.max_intermediate_rows,
            threads: opts.threads,
            columnar: opts.columnar,
            tracer: opts.tracer.under(&span),
        },
    );
    let (hits_before, executed_before) = cache.counters();
    let traced = exec.run_traced_cached(query, plan, cache)?;
    let (hits_after, executed_after) = cache.counters();
    // With a shared cache, concurrent sessions advance the counters too;
    // saturate so a neighbor's clear() can't underflow the report.
    let hits = hits_after.saturating_sub(hits_before);
    let executed = executed_after.saturating_sub(executed_before);
    let v = build_validation(
        query,
        plan,
        samples,
        opts,
        traced,
        hits,
        executed,
        Some(cache),
    )?;
    annotate_dry_run(&mut span, &v);
    Ok(v)
}

#[allow(clippy::too_many_arguments)]
fn build_validation<C: ValidationCache>(
    query: &Query,
    plan: &PhysicalPlan,
    samples: &SampleStore,
    opts: &ValidationOpts,
    traced: TracedRun,
    cache_hits: usize,
    subtrees_executed: usize,
    mut cache: Option<&mut C>,
) -> Result<Validation> {
    // Canonical fingerprint of each subtree, for estimate-cache keys. The
    // trace's relation sets are exactly the plan's node relsets, and
    // within one plan a relset identifies its subtree uniquely. Routed
    // through the cache's own `fingerprint` so it records each subtree's
    // base tables for surgical-refresh migration.
    let mut fps: FxHashMap<RelSet, u64> = FxHashMap::default();
    if let Some(c) = cache.as_mut() {
        plan.visit(&mut |n| {
            if let Some(fp) = c.fingerprint(query, n) {
                fps.insert(n.relset(), fp);
            }
        });
    }
    let mut delta = CardOverrides::new();
    // Δ's entries describe the data state the samples were drawn from.
    delta.set_data_version(samples.data_version());
    for (set, sample_rows) in &traced.node_cards {
        if set.len() < 2 && !opts.validate_leaves {
            continue;
        }
        let fp = fps.get(set).copied();
        // An already-validated subtree keeps its recorded estimate —
        // sampling is deterministic, so re-deriving it would produce the
        // same number; reusing guarantees it.
        if let (Some(c), Some(fp)) = (cache.as_mut(), fp) {
            if let Some(est) = c.validated_estimate(*set, fp) {
                delta.insert(*set, est);
                continue;
            }
        }
        let mut scale = 1.0;
        for rel in set.iter() {
            scale *= samples.scale_factor(query.table_of(rel)?)?;
        }
        let estimate = scale_up(*sample_rows, scale, opts.min_rows);
        if let (Some(c), Some(fp)) = (cache.as_mut(), fp) {
            c.record_validated(*set, fp, estimate);
        }
        delta.insert(*set, estimate);
    }
    Ok(Validation {
        delta,
        elapsed: traced.metrics.elapsed,
        sample_rows_produced: traced.metrics.rows_produced,
        cache_hits,
        subtrees_executed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::SampleConfig;
    use reopt_common::{ColId, RelId, RelSet, TableId};
    use reopt_plan::physical::PlanNodeInfo;
    use reopt_plan::query::ColRef;
    use reopt_plan::{AccessPath, JoinAlgo, Predicate, QueryBuilder};
    use reopt_storage::{Column, ColumnDef, Database, LogicalType, Table, TableSchema};

    /// Two OTT-style tables: a(A, B) and b(A, B), with B = A, `vals`
    /// distinct values and `per` rows per value.
    fn ott_pair(vals: i64, per: usize) -> Database {
        let mut db = Database::new();
        for name in ["a", "b"] {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![
                    ColumnDef::new("a", LogicalType::Int),
                    ColumnDef::new("b", LogicalType::Int),
                ])?;
                let mut data = Vec::new();
                for v in 0..vals {
                    data.extend(std::iter::repeat_n(v, per));
                }
                let mut t = Table::new(
                    id,
                    name,
                    schema,
                    vec![
                        Column::from_i64(LogicalType::Int, data.clone()),
                        Column::from_i64(LogicalType::Int, data),
                    ],
                )?;
                t.create_index(ColId::new(0))?;
                t.create_index(ColId::new(1))?;
                Ok(t)
            })
            .unwrap();
        }
        db
    }

    fn pair_query(c1: i64, c2: i64) -> (reopt_plan::Query, PhysicalPlan) {
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(TableId::new(0));
        let b = qb.add_relation(TableId::new(1));
        qb.add_predicate(Predicate::eq(a, ColId::new(0), c1));
        qb.add_predicate(Predicate::eq(b, ColId::new(0), c2));
        qb.add_join(ColRef::new(a, ColId::new(1)), ColRef::new(b, ColId::new(1)));
        let q = qb.build();
        let plan = PhysicalPlan::Join {
            algo: JoinAlgo::Hash,
            left: Box::new(PhysicalPlan::Scan {
                rel: RelId::new(0),
                table: TableId::new(0),
                access: AccessPath::SeqScan,
                info: PlanNodeInfo::default(),
            }),
            right: Box::new(PhysicalPlan::Scan {
                rel: RelId::new(1),
                table: TableId::new(1),
                access: AccessPath::SeqScan,
                info: PlanNodeInfo::default(),
            }),
            keys: vec![(
                ColRef::new(RelId::new(0), ColId::new(1)),
                ColRef::new(RelId::new(1), ColId::new(1)),
            )],
            info: PlanNodeInfo::default(),
        };
        (q, plan)
    }

    #[test]
    fn validates_join_sets_only_by_default() {
        let db = ott_pair(100, 40); // 4000 rows each
        let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
        let (q, plan) = pair_query(0, 0);
        let v = validate_plan(&q, &plan, &samples, &ValidationOpts::default()).unwrap();
        assert_eq!(v.delta.len(), 1);
        assert!(v.delta.contains(RelSet::first_n(2)));
    }

    #[test]
    fn leaf_validation_optional() {
        let db = ott_pair(100, 40);
        let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
        let (q, plan) = pair_query(0, 0);
        let opts = ValidationOpts {
            validate_leaves: true,
            ..Default::default()
        };
        let v = validate_plan(&q, &plan, &samples, &opts).unwrap();
        assert_eq!(v.delta.len(), 3); // 2 leaves + 1 join
        assert!(v.delta.contains(RelSet::single(RelId::new(0))));
    }

    #[test]
    fn nonempty_join_estimate_is_in_the_right_ballpark() {
        // True size: per² = 25600 (both filters keep value 0, all pairs
        // match). With 5%+5% samples the estimate is noisy but must be
        // within a factor of a few — far from the native estimate's ~160.
        // 160 rows per value keeps the Bernoulli sample of the filtered
        // cell comfortably nonempty (≈8 expected rows per side; an empty
        // sample would have probability ≈3e-4 per side).
        let db = ott_pair(100, 160);
        let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
        let (q, plan) = pair_query(0, 0);
        let v = validate_plan(&q, &plan, &samples, &ValidationOpts::default()).unwrap();
        let est = v.delta.get(RelSet::first_n(2)).unwrap();
        assert!(
            est > 25600.0 / 5.0 && est < 25600.0 * 5.0,
            "estimate {est} too far from truth 25600"
        );
    }

    #[test]
    fn empty_join_detected_and_clamped() {
        let db = ott_pair(100, 40);
        let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
        let (q, plan) = pair_query(0, 1); // disjoint constants: empty join
        let v = validate_plan(&q, &plan, &samples, &ValidationOpts::default()).unwrap();
        let est = v.delta.get(RelSet::first_n(2)).unwrap();
        assert_eq!(est, 1.0, "empty join must clamp to min_rows");
    }

    #[test]
    fn cached_validation_cannot_replay_pre_ingest_dry_runs() {
        use crate::cache::SampleRunCache;
        use reopt_storage::Value;

        // Regression: before cache keys carried a DataVersion, appending
        // rows and rebuilding samples left the old dry-run row sets
        // reachable under the same fingerprint — the "same query after
        // ingest" returned the pre-ingest estimate. Tables are small
        // enough to be copied whole (scale 1.0), so estimates are exact
        // and the staleness would be bit-visible.
        let mut db = ott_pair(10, 4); // 40 rows/table: sampled as full copies
        let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
        let (q, plan) = pair_query(0, 0);
        let opts = ValidationOpts::default();
        let mut cache = SampleRunCache::new();

        let before = validate_plan_cached(&q, &plan, &samples, &opts, &mut cache).unwrap();
        let est_before = before.delta.get(RelSet::first_n(2)).unwrap();
        assert_eq!(est_before, 16.0); // 4 × 4 matching pairs at value 0

        // Same (query, samples, cache): a pure replay.
        let replay = validate_plan_cached(&q, &plan, &samples, &opts, &mut cache).unwrap();
        assert!(replay.cache_hits > 0);
        assert_eq!(replay.delta.get(RelSet::first_n(2)).unwrap(), est_before);

        // Ingest doubles value 0 on one side, samples are rebuilt.
        let rows: Vec<Vec<Value>> = (0..4).map(|_| vec![Value::Int(0), Value::Int(0)]).collect();
        db.append_rows(TableId::new(0), &rows).unwrap();
        let samples2 = SampleStore::build(&db, SampleConfig::default()).unwrap();
        assert_ne!(samples2.data_version(), samples.data_version());

        // The SAME cache must not answer from the pre-ingest entries.
        let after = validate_plan_cached(&q, &plan, &samples2, &opts, &mut cache).unwrap();
        assert_eq!(after.cache_hits, 0, "stale pre-ingest dry-run replayed");
        assert!(after.subtrees_executed > 0);
        let est_after = after.delta.get(RelSet::first_n(2)).unwrap();
        assert_eq!(est_after, 32.0); // 8 × 4 matching pairs now
        assert_ne!(est_after, est_before);

        // And matches a from-scratch validation exactly.
        let fresh = validate_plan(&q, &plan, &samples2, &opts).unwrap();
        assert_eq!(fresh.delta.get(RelSet::first_n(2)).unwrap(), est_after);
    }

    #[test]
    fn validation_reports_timing_and_volume() {
        let db = ott_pair(100, 40);
        let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
        let (q, plan) = pair_query(0, 0);
        let v = validate_plan(&q, &plan, &samples, &ValidationOpts::default()).unwrap();
        assert!(v.sample_rows_produced > 0);
        // elapsed is a Duration; just ensure it is recorded.
        assert!(v.elapsed.as_nanos() > 0);
    }
}
