//! Cross-round caching of sample dry-run results.
//!
//! Round i+1 of the re-optimization loop validates a plan that typically
//! shares most of its subtrees with the plans of rounds 1..i — the loop's
//! transformations are local or reuse whole join groups. [`SampleRunCache`]
//! remembers every executed subtree's sample row set, keyed by a
//! *canonical* fingerprint ([`subtree_fingerprint`]): the covered relation
//! set, the local predicates applied to those relations, and the set of
//! equi-join keys applied anywhere inside the subtree. The fingerprint is
//! deliberately independent of join order and physical operators — a hash
//! join (A ⋈ B) ⋈ C and a merge join A ⋈ (B ⋈ C) produce the same logical
//! rows over the samples, so either one can stand in for the other. (The
//! executor still walks a hit node's children so the validation trace
//! follows the round's own plan shape; only the per-node scan/join work is
//! skipped.)
//!
//! The cache additionally records the full-database estimate derived for
//! each validated [`RelSet`], so an already-validated set is never
//! re-executed *or* re-scaled in later rounds.
//!
//! The fingerprint also folds in the *base table* of every covered
//! relation occurrence, which makes it safe to share one cache across
//! *different queries* of one database: two subtrees hash alike only when
//! they cover the same tables with the same predicates and join keys, in
//! which case their sample row sets are identical. The serving layer
//! exploits this through [`SharedSampleRunCache`], a clonable, thread-safe
//! handle over one cache that concurrent sessions consult during cold
//! misses — a 2-way join validated for one query template never re-runs
//! for another template that embeds the same subtree.
//!
//! A cache is only meaningful for one ([`crate::SampleStore`],
//! [`crate::ValidationOpts`]) pair — `min_rows` is baked into the
//! recorded estimates (the executor re-applies the row cap itself);
//! [`crate::validate_plan_cached`] documents the contract. Row sets are
//! stored and replayed by value: dry-run intermediates are bounded by the
//! deliberately small sample tables, so plain clones beat the API
//! complexity of sharing them.

use reopt_common::hash::FxHasher;
use reopt_common::{FxHashMap, RelSet, TableId};
use reopt_executor::{RowSet, SubtreeCache};
use reopt_plan::{PhysicalPlan, Predicate, Query};
use reopt_storage::{DataVersion, Value};
use std::hash::Hasher;
use std::sync::{Arc, Mutex, MutexGuard};

/// Cross-round sample dry-run cache (see the module docs).
///
/// Results are keyed by `(relation set, fingerprint, data version)`:
/// within one (query, samples, opts) contract the fingerprint is itself a
/// function of the relation set, so the composite key makes a cross-set
/// hash collision — which would silently replay the wrong rows —
/// structurally impossible. The [`DataVersion`] component (set from the
/// sample store's [`crate::SampleStore::data_version`] before use) makes a
/// cross-version hit equally impossible: rows dry-run before an ingest can
/// never answer a lookup issued after it.
#[derive(Debug, Clone, Default)]
pub struct SampleRunCache {
    /// Subtree output rows over the sample database.
    results: FxHashMap<(RelSet, u64, DataVersion), RowSet>,
    /// Full-database estimates, keyed like `results` so one cache can
    /// serve several queries whose relation sets overlap but differ in
    /// predicates.
    validated: FxHashMap<(RelSet, u64, DataVersion), f64>,
    /// Base tables covered by each fingerprint, recorded when the
    /// fingerprint is computed. Lets a partial sample refresh migrate
    /// entries whose tables were untouched instead of dropping the whole
    /// cache (see [`SampleRunCache::migrate_version`]).
    tables_of: FxHashMap<u64, Vec<TableId>>,
    /// The data version qualifying every lookup and store.
    version: DataVersion,
    hits: usize,
    executed: usize,
}

impl SampleRunCache {
    /// Empty cache (round 1 of a re-optimization run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Subtree lookups answered from the cache, over the cache's lifetime.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Subtrees actually executed (= stored) over the cache's lifetime.
    pub fn executed(&self) -> usize {
        self.executed
    }

    /// Number of distinct subtree results held.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The data version qualifying lookups and stores ([`DataVersion::ZERO`]
    /// until [`SampleRunCache::set_data_version`] is called — matching a
    /// never-ingested database).
    pub fn data_version(&self) -> DataVersion {
        self.version
    }

    /// Qualify all subsequent lookups and stores with `version`. Entries
    /// recorded under other versions stay resident but become unreachable
    /// until the version is set back — a stale replay is structurally
    /// impossible rather than merely unlikely.
    pub fn set_data_version(&mut self, version: DataVersion) {
        self.version = version;
    }

    /// The full-database estimate previously derived for `(set, fp)` at
    /// the current data version, if any.
    pub fn validated_estimate(&self, set: RelSet, fp: u64) -> Option<f64> {
        self.validated.get(&(set, fp, self.version)).copied()
    }

    /// Record the full-database estimate derived for `(set, fp)` at the
    /// current data version.
    pub fn record_validated(&mut self, set: RelSet, fp: u64, estimate: f64) {
        self.validated.insert((set, fp, self.version), estimate);
    }

    /// Drop everything — e.g. when the sample store is rebuilt.
    pub fn clear(&mut self) {
        self.results.clear();
        self.validated.clear();
        self.tables_of.clear();
    }

    /// Remember which base tables `fp` covers (first sighting wins — the
    /// fingerprint already folds the tables in, so later sightings agree).
    fn note_tables(&mut self, fp: u64, query: &Query, plan: &PhysicalPlan) {
        self.tables_of.entry(fp).or_insert_with(|| {
            let mut tables: Vec<TableId> = plan
                .relset()
                .iter()
                .filter_map(|rel| query.table_of(rel).ok())
                .collect();
            tables.sort_unstable();
            tables.dedup();
            tables
        });
    }

    /// Surgical-refresh migration: re-key every entry recorded at `from`
    /// to `to` when its fingerprint touches none of the `refreshed` base
    /// tables, and drop the rest — their sample rows were redrawn.
    /// Untouched tables' samples are pointer-identical across a
    /// [`crate::SampleStore::refresh_tables`], so a migrated entry's rows
    /// are exactly what a fresh dry-run at `to` would produce. Entries
    /// whose fingerprint was never sighted via [`SubtreeCache::fingerprint`]
    /// are dropped conservatively. Returns `(kept, dropped)`.
    pub fn migrate_version(
        &mut self,
        from: DataVersion,
        to: DataVersion,
        refreshed: &[TableId],
    ) -> (usize, usize) {
        if from == to {
            return (0, 0);
        }
        let survives = |tables_of: &FxHashMap<u64, Vec<TableId>>, fp: u64| {
            tables_of
                .get(&fp)
                .is_some_and(|ts| ts.iter().all(|t| !refreshed.contains(t)))
        };
        let mut kept = 0usize;
        let mut dropped = 0usize;
        let result_keys: Vec<_> = self
            .results
            // lint: ordered-ok(re-keying is per-entry; visit order is irrelevant)
            .keys()
            .filter(|k| k.2 == from)
            .copied()
            .collect();
        for key in result_keys {
            if let Some(rows) = self.results.remove(&key) {
                if survives(&self.tables_of, key.1) {
                    self.results.insert((key.0, key.1, to), rows);
                    kept += 1;
                } else {
                    dropped += 1;
                }
            }
        }
        let validated_keys: Vec<_> = self
            .validated
            // lint: ordered-ok(re-keying is per-entry; visit order is irrelevant)
            .keys()
            .filter(|k| k.2 == from)
            .copied()
            .collect();
        for key in validated_keys {
            if let Some(est) = self.validated.remove(&key) {
                if survives(&self.tables_of, key.1) {
                    self.validated.insert((key.0, key.1, to), est);
                    kept += 1;
                } else {
                    dropped += 1;
                }
            }
        }
        (kept, dropped)
    }
}

/// The caching interface plan validation needs: the executor-facing
/// [`SubtreeCache`] plus the validated full-database estimates and the
/// lifetime counters [`crate::validate_plan_cached`] reports from.
/// Implemented by the single-owner [`SampleRunCache`] and by the
/// thread-safe [`SharedSampleRunCache`].
pub trait ValidationCache: SubtreeCache {
    /// The full-database estimate previously derived for `(set, fp)`.
    fn validated_estimate(&mut self, set: RelSet, fp: u64) -> Option<f64>;

    /// Record the full-database estimate derived for `(set, fp)`.
    fn record_validated(&mut self, set: RelSet, fp: u64, estimate: f64);

    /// Lifetime (hits, executed) counters.
    fn counters(&mut self) -> (usize, usize);

    /// Qualify all subsequent lookups and stores with `version` (see
    /// [`SampleRunCache::set_data_version`]).
    fn set_data_version(&mut self, version: DataVersion);

    /// The data version currently qualifying lookups and stores.
    fn data_version(&mut self) -> DataVersion;
}

impl ValidationCache for SampleRunCache {
    fn validated_estimate(&mut self, set: RelSet, fp: u64) -> Option<f64> {
        SampleRunCache::validated_estimate(self, set, fp)
    }

    fn record_validated(&mut self, set: RelSet, fp: u64, estimate: f64) {
        SampleRunCache::record_validated(self, set, fp, estimate);
    }

    fn counters(&mut self) -> (usize, usize) {
        (self.hits, self.executed)
    }

    fn set_data_version(&mut self, version: DataVersion) {
        SampleRunCache::set_data_version(self, version);
    }

    fn data_version(&mut self) -> DataVersion {
        self.version
    }
}

/// Point-in-time counters of a [`SharedSampleRunCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SampleCacheStats {
    /// Subtree lookups answered from the cache, across all sharers.
    pub hits: usize,
    /// Subtrees executed fresh (= stored), across all sharers.
    pub executed: usize,
    /// Distinct subtree row sets held.
    pub entries: usize,
    /// Distinct validated full-database estimates held.
    pub validated: usize,
}

/// A clonable, thread-safe handle over one [`SampleRunCache`], shared by
/// every session of a query service: concurrent validations of *different*
/// queries pool their dry-run work, so a subtree validated under one
/// template is replayed — not re-executed — when another template embeds
/// it (the fingerprint includes base tables, predicates and join keys, so
/// a hit is exact; see the module docs).
///
/// Locking is per cache operation, not per validation: two sessions
/// validating disjoint plans proceed mostly in parallel, serializing only
/// on the map accesses. Under concurrency the per-validation hit/executed
/// counters attributed to one run may include a neighbor's traffic; the
/// lifetime totals in [`SampleCacheStats`] are always exact.
/// Each *handle* carries its own [`DataVersion`] (set via
/// [`ValidationCache::set_data_version`], copied by `clone`): a session
/// that was admitted under an older database snapshot keeps reading and
/// writing entries qualified with *its* version even while the serving
/// layer has already moved newer sessions forward — the shared map simply
/// holds both generations, and neither can answer the other's lookups.
#[derive(Debug, Clone, Default)]
pub struct SharedSampleRunCache {
    inner: Arc<Mutex<SampleRunCache>>,
    /// Handle-local: deliberately outside the mutex (see above).
    version: DataVersion,
}

impl SharedSampleRunCache {
    /// Fresh, empty shared cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// All map operations are single map inserts/lookups, so a sharer
    /// that panicked mid-operation cannot leave the cache torn: recover
    /// the guard instead of propagating the poison.
    fn lock(&self) -> MutexGuard<'_, SampleRunCache> {
        reopt_common::lock_unpoisoned(&self.inner)
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> SampleCacheStats {
        let g = self.lock();
        SampleCacheStats {
            hits: g.hits,
            executed: g.executed,
            entries: g.results.len(),
            validated: g.validated.len(),
        }
    }

    /// Drop everything — e.g. when the sample store is rebuilt.
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Surgical-refresh migration across all sharers — see
    /// [`SampleRunCache::migrate_version`]. Returns `(kept, dropped)`.
    pub fn migrate_version(
        &self,
        from: DataVersion,
        to: DataVersion,
        refreshed: &[TableId],
    ) -> (usize, usize) {
        self.lock().migrate_version(from, to, refreshed)
    }
}

impl SubtreeCache for SharedSampleRunCache {
    fn fingerprint(&mut self, query: &Query, plan: &PhysicalPlan) -> Option<u64> {
        let fp = subtree_fingerprint(query, plan);
        // Record the covered base tables so a partial sample refresh can
        // tell which entries survive (see `migrate_version`).
        self.lock().note_tables(fp, query, plan);
        Some(fp)
    }

    fn lookup(&mut self, set: RelSet, fp: u64) -> Option<RowSet> {
        let mut g = self.lock();
        g.set_data_version(self.version);
        g.lookup(set, fp)
    }

    fn peek_rows(&mut self, set: RelSet, fp: u64) -> Option<u64> {
        let mut g = self.lock();
        g.set_data_version(self.version);
        g.peek_rows(set, fp)
    }

    fn store(&mut self, set: RelSet, fp: u64, rows: &RowSet) {
        let mut g = self.lock();
        g.set_data_version(self.version);
        g.store(set, fp, rows);
    }
}

impl ValidationCache for SharedSampleRunCache {
    fn validated_estimate(&mut self, set: RelSet, fp: u64) -> Option<f64> {
        let mut g = self.lock();
        g.set_data_version(self.version);
        SampleRunCache::validated_estimate(&g, set, fp)
    }

    fn record_validated(&mut self, set: RelSet, fp: u64, estimate: f64) {
        let mut g = self.lock();
        g.set_data_version(self.version);
        g.record_validated(set, fp, estimate);
    }

    fn counters(&mut self) -> (usize, usize) {
        let g = self.lock();
        (g.hits, g.executed)
    }

    fn set_data_version(&mut self, version: DataVersion) {
        self.version = version;
    }

    fn data_version(&mut self) -> DataVersion {
        self.version
    }
}

impl SubtreeCache for SampleRunCache {
    fn fingerprint(&mut self, query: &Query, plan: &PhysicalPlan) -> Option<u64> {
        let fp = subtree_fingerprint(query, plan);
        self.note_tables(fp, query, plan);
        Some(fp)
    }

    fn lookup(&mut self, set: RelSet, fp: u64) -> Option<RowSet> {
        let cached = self.results.get(&(set, fp, self.version))?;
        self.hits += 1;
        Some(cached.clone())
    }

    fn peek_rows(&mut self, set: RelSet, fp: u64) -> Option<u64> {
        let n = self.results.get(&(set, fp, self.version))?.len() as u64;
        self.hits += 1;
        Some(n)
    }

    fn store(&mut self, set: RelSet, fp: u64, rows: &RowSet) {
        self.executed += 1;
        self.results.insert((set, fp, self.version), rows.clone());
    }
}

/// Canonical fingerprint of a plan subtree: relation set (with each
/// occurrence's *base table*) + applied local predicates + applied join
/// keys, insensitive to join order, operand orientation and physical
/// operator choice. Including the tables makes the fingerprint meaningful
/// across different queries over one database (see
/// [`SharedSampleRunCache`]): relation occurrence `r0` of two unrelated
/// queries may scan different tables, and must then hash differently.
pub fn subtree_fingerprint(query: &Query, plan: &PhysicalPlan) -> u64 {
    let mut h = FxHasher::default();
    let set = plan.relset();
    h.write_u64(set.mask());
    // Per covered relation: its base table, then its local predicates in
    // RelId order (the executor applies every local predicate of a covered
    // relation at its scan).
    for rel in set.iter() {
        h.write_u64(match query.table_of(rel) {
            Ok(t) => t.0 as u64,
            // Unresolvable occurrence: poison the slot so the subtree can
            // never alias one with a known table.
            Err(_) => u64::MAX,
        });
        for p in query.local_predicates(rel) {
            hash_predicate(&mut h, p);
        }
    }
    // Equi-join keys applied anywhere in the subtree, canonically oriented
    // and sorted so the same logical edge set hashes identically whatever
    // tree shape applied it.
    let mut edges: Vec<(u32, u32, u32, u32)> = Vec::new();
    plan.visit(&mut |n| {
        if let PhysicalPlan::Join { keys, .. } = n {
            for (a, b) in keys {
                let ka = (a.rel.0, a.col.0);
                let kb = (b.rel.0, b.col.0);
                let ((r1, c1), (r2, c2)) = if ka <= kb { (ka, kb) } else { (kb, ka) };
                edges.push((r1, c1, r2, c2));
            }
        }
    });
    edges.sort_unstable();
    edges.dedup();
    for (r1, c1, r2, c2) in edges {
        h.write_u32(r1);
        h.write_u32(c1);
        h.write_u32(r2);
        h.write_u32(c2);
    }
    h.finish()
}

fn hash_predicate(h: &mut FxHasher, p: &Predicate) {
    h.write_u32(p.rel.0);
    h.write_u32(p.col.0);
    h.write_u8(match p.op {
        reopt_plan::CmpOp::Eq => 0,
        reopt_plan::CmpOp::Ne => 1,
        reopt_plan::CmpOp::Lt => 2,
        reopt_plan::CmpOp::Le => 3,
        reopt_plan::CmpOp::Gt => 4,
        reopt_plan::CmpOp::Ge => 5,
        reopt_plan::CmpOp::Between => 6,
    });
    hash_value(h, &p.value);
    match &p.value2 {
        Some(v) => hash_value(h, v),
        None => h.write_u8(0xff),
    }
}

fn hash_value(h: &mut FxHasher, v: &Value) {
    match v {
        Value::Int(i) => {
            h.write_u8(0);
            h.write_i64(*i);
        }
        Value::Float(f) => {
            h.write_u8(1);
            h.write_u64(f.to_bits());
        }
        Value::Str(s) => {
            h.write_u8(2);
            h.write(s.as_bytes());
        }
        Value::Null => h.write_u8(3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::{ColId, RelId, TableId};
    use reopt_plan::physical::PlanNodeInfo;
    use reopt_plan::query::ColRef;
    use reopt_plan::{AccessPath, JoinAlgo, Predicate, QueryBuilder};

    fn scan(rel: u32) -> PhysicalPlan {
        PhysicalPlan::Scan {
            rel: RelId::new(rel),
            table: TableId::new(rel),
            access: AccessPath::SeqScan,
            info: PlanNodeInfo::default(),
        }
    }

    fn join(algo: JoinAlgo, l: PhysicalPlan, r: PhysicalPlan, a: u32, b: u32) -> PhysicalPlan {
        PhysicalPlan::Join {
            algo,
            left: Box::new(l),
            right: Box::new(r),
            keys: vec![(
                ColRef::new(RelId::new(a), ColId::new(1)),
                ColRef::new(RelId::new(b), ColId::new(1)),
            )],
            info: PlanNodeInfo::default(),
        }
    }

    fn chain_query(k: usize) -> Query {
        let mut qb = QueryBuilder::new();
        let rels: Vec<_> = (0..k).map(|i| qb.add_relation(TableId::from(i))).collect();
        qb.add_predicate(Predicate::eq(rels[0], ColId::new(0), 0i64));
        for w in rels.windows(2) {
            qb.add_join(
                ColRef::new(w[0], ColId::new(1)),
                ColRef::new(w[1], ColId::new(1)),
            );
        }
        qb.build()
    }

    #[test]
    fn fingerprint_ignores_operator_and_orientation() {
        let q = chain_query(2);
        let p1 = join(JoinAlgo::Hash, scan(0), scan(1), 0, 1);
        let p2 = join(JoinAlgo::Merge, scan(1), scan(0), 1, 0);
        assert_eq!(subtree_fingerprint(&q, &p1), subtree_fingerprint(&q, &p2));
    }

    #[test]
    fn fingerprint_ignores_association_order() {
        let q = chain_query(3);
        // ((0 ⋈ 1) ⋈ 2) vs (0 ⋈ (1 ⋈ 2)): same relations, same edges.
        let left_deep = join(
            JoinAlgo::Hash,
            join(JoinAlgo::Hash, scan(0), scan(1), 0, 1),
            scan(2),
            1,
            2,
        );
        let right_deep = join(
            JoinAlgo::Hash,
            scan(0),
            join(JoinAlgo::Hash, scan(1), scan(2), 1, 2),
            0,
            1,
        );
        assert_eq!(
            subtree_fingerprint(&q, &left_deep),
            subtree_fingerprint(&q, &right_deep)
        );
    }

    #[test]
    fn fingerprint_distinguishes_relation_sets_and_edges() {
        let q = chain_query(3);
        let p01 = join(JoinAlgo::Hash, scan(0), scan(1), 0, 1);
        let p12 = join(JoinAlgo::Hash, scan(1), scan(2), 1, 2);
        assert_ne!(subtree_fingerprint(&q, &p01), subtree_fingerprint(&q, &p12));
        assert_ne!(
            subtree_fingerprint(&q, &scan(0)),
            subtree_fingerprint(&q, &scan(1))
        );
    }

    #[test]
    fn fingerprint_sees_base_tables() {
        // Same relation ids and shape, different base tables ⇒ different
        // fingerprint — required for cross-query cache sharing.
        let mk = |t0: u32, t1: u32| {
            let mut qb = QueryBuilder::new();
            let a = qb.add_relation(TableId::new(t0));
            let b = qb.add_relation(TableId::new(t1));
            qb.add_join(ColRef::new(a, ColId::new(1)), ColRef::new(b, ColId::new(1)));
            qb.build()
        };
        let p = join(JoinAlgo::Hash, scan(0), scan(1), 0, 1);
        assert_ne!(
            subtree_fingerprint(&mk(0, 1), &p),
            subtree_fingerprint(&mk(0, 2), &p)
        );
        // Same tables in two distinct Query values ⇒ same fingerprint:
        // the cross-query sharing contract.
        assert_eq!(
            subtree_fingerprint(&mk(0, 1), &p),
            subtree_fingerprint(&mk(0, 1), &p)
        );
    }

    #[test]
    fn shared_cache_pools_results_across_clones() {
        use reopt_executor::SubtreeCache as _;
        let q = chain_query(2);
        let p = join(JoinAlgo::Hash, scan(0), scan(1), 0, 1);
        let shared = SharedSampleRunCache::new();
        let mut a = shared.clone();
        let mut b = shared.clone();
        let fp = a.fingerprint(&q, &p).unwrap();
        let set = p.relset();
        assert!(a.lookup(set, fp).is_none());
        a.store(set, fp, &RowSet::single(RelId::new(0), vec![0, 1]));
        // The clone sees the store immediately.
        assert!(b.lookup(set, fp).is_some());
        let stats = shared.stats();
        assert_eq!(stats.executed, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
        shared.clear();
        assert_eq!(shared.stats().entries, 0);
    }

    #[test]
    fn shared_cache_handles_isolate_data_versions() {
        use reopt_executor::SubtreeCache as _;
        let q = chain_query(2);
        let p = join(JoinAlgo::Hash, scan(0), scan(1), 0, 1);
        let shared = SharedSampleRunCache::new();
        let mut old_session = shared.clone();
        let mut new_session = shared.clone();
        ValidationCache::set_data_version(&mut old_session, DataVersion::new(1));
        ValidationCache::set_data_version(&mut new_session, DataVersion::new(2));
        let fp = old_session.fingerprint(&q, &p).unwrap();
        let set = p.relset();
        old_session.store(set, fp, &RowSet::single(RelId::new(0), vec![0, 1]));
        old_session.record_validated(set, fp, 42.0);
        // A session admitted after the ingest sees nothing from before it…
        assert!(new_session.lookup(set, fp).is_none());
        assert!(new_session.validated_estimate(set, fp).is_none());
        // …while the old-snapshot session keeps replaying its own entries,
        // even though both share one underlying cache.
        assert!(old_session.lookup(set, fp).is_some());
        assert_eq!(old_session.validated_estimate(set, fp), Some(42.0));
        assert_eq!(shared.stats().entries, 1);
    }

    #[test]
    fn migrate_version_keeps_disjoint_entries_and_drops_touched_ones() {
        use reopt_executor::SubtreeCache as _;
        let q = chain_query(3);
        let p01 = join(JoinAlgo::Hash, scan(0), scan(1), 0, 1);
        let p12 = join(JoinAlgo::Hash, scan(1), scan(2), 1, 2);
        let shared = SharedSampleRunCache::new();
        let mut h = shared.clone();
        ValidationCache::set_data_version(&mut h, DataVersion::new(1));
        let fp01 = h.fingerprint(&q, &p01).unwrap();
        let fp12 = h.fingerprint(&q, &p12).unwrap();
        h.store(p01.relset(), fp01, &RowSet::single(RelId::new(0), vec![0]));
        h.store(p12.relset(), fp12, &RowSet::single(RelId::new(1), vec![1]));
        h.record_validated(p01.relset(), fp01, 10.0);
        h.record_validated(p12.relset(), fp12, 20.0);
        // Table 2 was refreshed: the {1,2} entries die, the {0,1} migrate.
        let (kept, dropped) =
            shared.migrate_version(DataVersion::new(1), DataVersion::new(2), &[TableId::new(2)]);
        assert_eq!((kept, dropped), (2, 2));
        let mut at2 = shared.clone();
        ValidationCache::set_data_version(&mut at2, DataVersion::new(2));
        assert!(at2.lookup(p01.relset(), fp01).is_some());
        assert_eq!(at2.validated_estimate(p01.relset(), fp01), Some(10.0));
        assert!(at2.lookup(p12.relset(), fp12).is_none());
        assert!(at2.validated_estimate(p12.relset(), fp12).is_none());
        // Nothing is left behind at the old version either.
        let mut at1 = shared.clone();
        ValidationCache::set_data_version(&mut at1, DataVersion::new(1));
        assert!(at1.lookup(p01.relset(), fp01).is_none());
        assert!(at1.lookup(p12.relset(), fp12).is_none());
    }

    #[test]
    fn migrate_version_drops_unsighted_fingerprints() {
        // An entry stored without ever passing through `fingerprint` has
        // no recorded table set and must be dropped conservatively.
        let mut cache = SampleRunCache::new();
        cache.set_data_version(DataVersion::new(1));
        let set = RelSet::single(RelId::new(0));
        cache.store(set, 0xdead, &RowSet::single(RelId::new(0), vec![0]));
        let (kept, dropped) =
            cache.migrate_version(DataVersion::new(1), DataVersion::new(2), &[TableId::new(9)]);
        assert_eq!((kept, dropped), (0, 1));
    }

    #[test]
    fn fingerprint_sees_local_predicates() {
        // Same shape, different constant ⇒ different fingerprint.
        let mk = |c: i64| {
            let mut qb = QueryBuilder::new();
            let a = qb.add_relation(TableId::new(0));
            let b = qb.add_relation(TableId::new(1));
            qb.add_predicate(Predicate::eq(a, ColId::new(0), c));
            qb.add_join(ColRef::new(a, ColId::new(1)), ColRef::new(b, ColId::new(1)));
            qb.build()
        };
        let (qa, qb) = (mk(0), mk(1));
        let p = join(JoinAlgo::Hash, scan(0), scan(1), 0, 1);
        assert_ne!(subtree_fingerprint(&qa, &p), subtree_fingerprint(&qb, &p));
    }
}
