//! Telemetry overhead on the service throughput workload: the same warmed
//! query mix is executed through (a) a bare executor with no service and a
//! disabled tracer — the no-tracer baseline, (b) the service with tracing
//! off, and (c) the service with tracing forced on. Machine-readable
//! output lands in `BENCH_telemetry.json` for CI.
//!
//! The acceptance gates: tracer-off service execution must sit within
//! noise of the baseline (the disabled tracer is a branch-on-`None`
//! no-op), and tracer-on overhead over tracer-off must stay under 10 %.
//! Results are bit-identical in every mode (proven by
//! `tests/parallel_determinism.rs` and `tests/midquery_equivalence.rs`);
//! only wall-clock may move. Pass `--quick` for the reduced CI
//! configuration.

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use reopt_executor::{ExecOpts, Executor};
use reopt_plan::Query;
use reopt_sampling::SampleConfig;
use reopt_service::{QueryService, ServiceConfig};
use reopt_stats::AnalyzeOpts;
use reopt_workloads::ott::{build_ott_database, ott_query, recommended_sample_ratio, OttConfig};

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: &'static str,
    quick: bool,
    available_parallelism: usize,
    /// Distinct templates × literals in the mix.
    queries: usize,
    /// Timed repetitions per mode (best-of).
    reps: usize,
    /// Best-of-reps wall time for one pass over the mix, milliseconds.
    baseline_ms: f64,
    tracer_off_ms: f64,
    tracer_on_ms: f64,
    /// tracer_off_ms / baseline_ms − 1 (service + disabled tracer cost).
    tracer_off_overhead: f64,
    /// tracer_on_ms / tracer_off_ms − 1 (span recording cost).
    tracer_on_overhead: f64,
    /// Spans recorded for one traced execution of the last query.
    spans_per_query: usize,
    /// Gates: tracer-off within noise of baseline; tracer-on < 10 % over
    /// tracer-off.
    gate_off_noise_max: f64,
    gate_on_overhead_max: f64,
    gate_passed: bool,
}

fn service(config: &OttConfig, trace: bool) -> Arc<QueryService> {
    let db = Arc::new(build_ott_database(config).unwrap());
    Arc::new(
        QueryService::from_database(
            db,
            &AnalyzeOpts::default(),
            SampleConfig {
                ratio: recommended_sample_ratio(config),
                ..Default::default()
            },
            ServiceConfig {
                trace: Some(trace),
                ..Default::default()
            },
        )
        .unwrap(),
    )
}

/// Best-of-`reps` wall time of `pass`, milliseconds; `pass` returns total
/// joined rows, asserted invariant across modes by the caller.
fn best_of(reps: usize, mut pass: impl FnMut() -> u64) -> (f64, u64) {
    let rows = pass(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let n = pass();
        assert_eq!(rows, n, "a timed pass changed the answer");
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, rows)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 5 } else { 15 };
    let config = OttConfig {
        rows_per_value: if quick { 20 } else { 50 },
        ..Default::default()
    };

    // The throughput mix: every template warmed, so timed passes measure
    // the serve-and-execute path, not cold re-optimization.
    let consts: &[&[i64]] = &[
        &[0, 0, 0, 0],
        &[0, 0, 0, 1],
        &[0, 1, 0, 1, 0],
        &[0, 0, 0, 0, 0],
    ];
    let svc_off = service(&config, false);
    let svc_on = service(&config, true);
    let queries: Vec<Query> = consts
        .iter()
        .map(|c| ott_query(svc_off.engine().db(), c).unwrap())
        .collect();
    let plans: Vec<_> = queries
        .iter()
        .map(|q| svc_off.submit(q).unwrap().plan)
        .collect();
    for q in &queries {
        svc_on.submit(q).unwrap();
    }

    // (a) No-tracer baseline: a bare executor over the admitted plans.
    let exec_opts = ExecOpts {
        threads: ExecOpts::default().effective_threads(),
        columnar: Some(ExecOpts::default().effective_columnar()),
        ..Default::default()
    };
    let engine_off = svc_off.engine();
    let exec = Executor::with_opts(engine_off.db(), exec_opts);
    let (baseline_ms, base_rows) = best_of(reps, || {
        queries
            .iter()
            .zip(&plans)
            .map(|(q, p)| exec.run(q, p).unwrap().join_rows)
            .sum()
    });

    // (b) Service, tracing off. (c) Service, tracing on.
    let run_mix = |svc: &QueryService| -> u64 {
        queries
            .iter()
            .map(|q| svc.execute(q).unwrap().output.join_rows)
            .sum()
    };
    let (tracer_off_ms, off_rows) = best_of(reps, || run_mix(&svc_off));
    let (tracer_on_ms, on_rows) = best_of(reps, || run_mix(&svc_on));
    assert_eq!(base_rows, off_rows, "service changed the answer");
    assert_eq!(off_rows, on_rows, "tracing changed the answer");

    let spans_per_query = svc_on
        .execute(queries.last().unwrap())
        .unwrap()
        .trace
        .map_or(0, |t| t.len());

    let tracer_off_overhead = tracer_off_ms / baseline_ms.max(1e-9) - 1.0;
    let tracer_on_overhead = tracer_on_ms / tracer_off_ms.max(1e-9) - 1.0;
    // "Within noise": the service adds admission (fingerprint + cache hit)
    // on top of raw execution, so the off-gate tolerates that plus timer
    // jitter; the on-gate is the ISSUE's 10 % ceiling.
    let gate_off_noise_max = 0.10;
    let gate_on_overhead_max = 0.10;
    let report = BenchReport {
        bench: "bench_telemetry",
        quick,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        queries: queries.len(),
        reps,
        baseline_ms,
        tracer_off_ms,
        tracer_on_ms,
        tracer_off_overhead,
        tracer_on_overhead,
        spans_per_query,
        gate_off_noise_max,
        gate_on_overhead_max,
        gate_passed: tracer_off_overhead < gate_off_noise_max
            && tracer_on_overhead < gate_on_overhead_max,
    };

    println!(
        "baseline {baseline_ms:.3} ms | tracer-off {tracer_off_ms:.3} ms ({:+.1}%) | tracer-on {tracer_on_ms:.3} ms ({:+.1}%) | {spans_per_query} spans/query",
        100.0 * tracer_off_overhead,
        100.0 * tracer_on_overhead,
    );
    println!("gate: {}", if report.gate_passed { "PASS" } else { "FAIL" });

    // Anchor the output at the workspace root (cargo runs benches with
    // cwd = the package directory) so CI finds one canonical path.
    let out = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(pkg) => std::path::Path::new(&pkg)
            .ancestors()
            .nth(2)
            .unwrap()
            .join("BENCH_telemetry.json"),
        Err(_) => std::path::PathBuf::from("BENCH_telemetry.json"),
    };
    let json = serde_json::to_string(&report).unwrap();
    std::fs::write(&out, &json).unwrap();
    println!("wrote {}", out.display());
}
