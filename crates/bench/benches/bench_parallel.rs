//! Partition-parallel executor scaling: serial vs 2/4/8 worker threads on
//! OTT and TPC-H multi-join shapes, full-database runs and sample dry-runs
//! measured separately, with machine-readable output in
//! `BENCH_parallel.json` so the parallel perf trajectory is tracked in CI
//! alongside `BENCH_incremental.json` and `BENCH_service.json`.
//!
//! Not a criterion harness: each point executes the workload's repaired
//! plan end to end at a fixed [`ExecOpts::threads`] setting. Results are
//! bit-identical at every thread count (asserted here per point, proven
//! exhaustively by `tests/parallel_determinism.rs`), so the *only* thing
//! that may move is wall-clock. Pass `--quick` for the reduced-iteration
//! CI configuration.
//!
//! `available_parallelism` is recorded in the report: speedups are bounded
//! by the cores the host actually grants (a 1-core container measures the
//! partitioning overhead, not the scaling).

use std::time::Instant;

use serde::Serialize;

use reopt_common::rng::derive_rng_indexed;
use reopt_core::{ReOptConfig, ReOptimizer};
use reopt_executor::{ExecOpts, Executor};
use reopt_optimizer::Optimizer;
use reopt_plan::{PhysicalPlan, Query};
use reopt_sampling::{validate_plan, SampleConfig, SampleStore, ValidationOpts};
use reopt_stats::{analyze_database, AnalyzeOpts, DatabaseStats};
use reopt_storage::Database;
use reopt_workloads::ott::{build_ott_database, ott_query, recommended_sample_ratio, OttConfig};
use reopt_workloads::tpch::{build_tpch_database, instantiate, TpchConfig};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Debug, Serialize)]
struct ThreadPoint {
    threads: usize,
    /// Best-of-`reps` wall time, milliseconds (min, not mean: scheduling
    /// noise only ever adds time).
    ms: f64,
    /// serial_ms / ms.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct ShapeResult {
    workload: String,
    query: String,
    /// "full" = repaired plan over the full database; "dryrun" = the same
    /// plan validated over the samples (Δ derivation included).
    mode: &'static str,
    /// Output rows of the measured run (identical at every thread count).
    rows: u64,
    serial_ms: f64,
    points: Vec<ThreadPoint>,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: &'static str,
    quick: bool,
    /// Cores the host grants; the scaling ceiling.
    available_parallelism: usize,
    shapes: Vec<ShapeResult>,
    /// Geomean full-run speedup at 4 threads across shapes.
    full_speedup_at_4: f64,
    /// Geomean dry-run speedup at 4 threads across shapes.
    dryrun_speedup_at_4: f64,
}

struct Bound {
    db: Database,
    stats: DatabaseStats,
    samples: SampleStore,
}

impl Bound {
    fn new(db: Database, ratio: f64) -> Self {
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(
            &db,
            SampleConfig {
                ratio,
                ..Default::default()
            },
        )
        .unwrap();
        Bound { db, stats, samples }
    }

    /// The sampling-repaired plan — what a served query actually runs.
    fn repaired_plan(&self, q: &Query) -> PhysicalPlan {
        let opt = Optimizer::new(&self.db, &self.stats);
        ReOptimizer::with_config(&opt, &self.samples, ReOptConfig::with_threads(1))
            .run(q)
            .unwrap()
            .final_plan
    }

    fn measure_full(&self, workload: &str, name: &str, q: &Query, reps: usize) -> ShapeResult {
        let plan = self.repaired_plan(q);
        let mut rows = 0u64;
        let points = sweep(reps, |threads| {
            let exec = Executor::with_opts(&self.db, ExecOpts::with_threads(threads));
            let (out, _) = exec.run_rowset(q, &plan).unwrap();
            let n = out.len() as u64;
            if rows == 0 {
                rows = n;
            }
            assert_eq!(rows, n, "thread count changed the answer");
        });
        shape(workload, name, "full", rows, points)
    }

    fn measure_dryrun(&self, workload: &str, name: &str, q: &Query, reps: usize) -> ShapeResult {
        let plan = self.repaired_plan(q);
        let mut rows = 0u64;
        let points = sweep(reps, |threads| {
            let opts = ValidationOpts {
                threads,
                ..Default::default()
            };
            let v = validate_plan(q, &plan, &self.samples, &opts).unwrap();
            let n = v.delta.len() as u64;
            if rows == 0 {
                rows = n;
            }
            assert_eq!(rows, n, "thread count changed Δ");
        });
        shape(workload, name, "dryrun", rows, points)
    }
}

/// Time `run(threads)` best-of-`reps` for every thread count.
fn sweep(reps: usize, mut run: impl FnMut(usize)) -> Vec<(usize, f64)> {
    THREAD_COUNTS
        .iter()
        .map(|&threads| {
            run(threads); // warm-up (allocator, page cache)
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                run(threads);
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            (threads, best)
        })
        .collect()
}

fn shape(
    workload: &str,
    name: &str,
    mode: &'static str,
    rows: u64,
    raw: Vec<(usize, f64)>,
) -> ShapeResult {
    let serial_ms = raw[0].1;
    ShapeResult {
        workload: workload.to_string(),
        query: name.to_string(),
        mode,
        rows,
        serial_ms,
        points: raw
            .into_iter()
            .map(|(threads, ms)| ThreadPoint {
                threads,
                ms,
                speedup: serial_ms / ms.max(1e-9),
            })
            .collect(),
    }
}

fn geomean_at(shapes: &[ShapeResult], mode: &str, threads: usize) -> f64 {
    let logs: Vec<f64> = shapes
        .iter()
        .filter(|s| s.mode == mode)
        .filter_map(|s| s.points.iter().find(|p| p.threads == threads))
        .map(|p| p.speedup.ln())
        .collect();
    if logs.is_empty() {
        return 1.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 10 };
    let mut shapes = Vec::new();

    // OTT chains: the non-empty all-equal query is the M^k join blow-up
    // (real join volume); the empty-edge one is the repair fixture whose
    // final plan is scan-dominated.
    let ott_config = OttConfig {
        rows_per_value: if quick { 24 } else { 48 },
        ..Default::default()
    };
    let ott = Bound::new(
        build_ott_database(&ott_config).unwrap(),
        recommended_sample_ratio(&ott_config),
    );
    for consts in [vec![0i64, 0, 0, 0], vec![0, 0, 0, 0, 1]] {
        let q = ott_query(&ott.db, &consts).unwrap();
        let name = format!("chain{}/{consts:?}", consts.len());
        shapes.push(ott.measure_full("ott", &name, &q, reps));
        shapes.push(ott.measure_dryrun("ott", &name, &q, reps));
    }

    // TPC-H multi-join templates (the paper's Figure 4/7 workload).
    let tpch = Bound::new(
        build_tpch_database(&TpchConfig {
            scale: if quick { 0.01 } else { 0.05 },
            ..Default::default()
        })
        .unwrap(),
        0.1,
    );
    for name in ["q5", "q8", "q9"] {
        let mut rng = derive_rng_indexed(0xbe2c, name, 0);
        let q = instantiate(&tpch.db, name, &mut rng).unwrap();
        shapes.push(tpch.measure_full("tpch", name, &q, reps));
        shapes.push(tpch.measure_dryrun("tpch", name, &q, reps));
    }

    let report = BenchReport {
        bench: "bench_parallel",
        quick,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        full_speedup_at_4: geomean_at(&shapes, "full", 4),
        dryrun_speedup_at_4: geomean_at(&shapes, "dryrun", 4),
        shapes,
    };

    println!(
        "{:<28} {:<7} {:>10} {:>8} {:>8} {:>8}",
        "shape", "mode", "serial ms", "2t", "4t", "8t"
    );
    for s in &report.shapes {
        let at = |t: usize| {
            s.points
                .iter()
                .find(|p| p.threads == t)
                .map_or(0.0, |p| p.speedup)
        };
        println!(
            "{:<28} {:<7} {:>10.3} {:>7.2}x {:>7.2}x {:>7.2}x",
            format!("{}/{}", s.workload, s.query),
            s.mode,
            s.serial_ms,
            at(2),
            at(4),
            at(8)
        );
    }
    println!(
        "available parallelism: {}; geomean speedup at 4 threads: full {:.2}x, dryrun {:.2}x",
        report.available_parallelism, report.full_speedup_at_4, report.dryrun_speedup_at_4
    );

    // Anchor the output at the workspace root (cargo runs benches with
    // cwd = the package directory) so CI finds one canonical path.
    let out = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(pkg) => std::path::Path::new(&pkg)
            .ancestors()
            .nth(2)
            .unwrap()
            .join("BENCH_parallel.json"),
        Err(_) => std::path::PathBuf::from("BENCH_parallel.json"),
    };
    let json = serde_json::to_string(&report).unwrap();
    std::fs::write(&out, &json).unwrap();
    println!("wrote {}", out.display());
}
