//! Statistics micro-benchmarks: ANALYZE over wide columns and the
//! selectivity estimation hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use reopt_stats::{analyze_column, eq_join_selectivity, AnalyzeOpts};
use reopt_storage::{Column, LogicalType};

fn uniform_column(rows: usize, distinct: i64) -> Column {
    Column::from_i64(
        LogicalType::Int,
        (0..rows as i64).map(|i| i % distinct).collect(),
    )
}

fn skewed_column(rows: usize) -> Column {
    // 50% one value, rest spread.
    let mut data = vec![0i64; rows / 2];
    data.extend((0..(rows / 2) as i64).map(|i| i % 5000 + 1));
    Column::from_i64(LogicalType::Int, data)
}

fn bench_analyze(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats/analyze");
    for rows in [100_000usize, 1_000_000] {
        let uni = uniform_column(rows, 10_000);
        g.bench_with_input(BenchmarkId::new("uniform", rows), &rows, |b, _| {
            b.iter(|| black_box(analyze_column(&uni, &AnalyzeOpts::default()).n_distinct))
        });
        let skew = skewed_column(rows);
        g.bench_with_input(BenchmarkId::new("skewed", rows), &rows, |b, _| {
            b.iter(|| black_box(analyze_column(&skew, &AnalyzeOpts::default()).mcv.len()))
        });
    }
    g.finish();
}

fn bench_selectivity(c: &mut Criterion) {
    let col = skewed_column(1_000_000);
    let s = analyze_column(&col, &AnalyzeOpts::default());
    let mut g = c.benchmark_group("stats/selectivity");
    g.bench_function("eq_mcv_hit", |b| b.iter(|| black_box(s.eq_selectivity(0))));
    g.bench_function("eq_histogram", |b| {
        b.iter(|| black_box(s.eq_selectivity(4321)))
    });
    g.bench_function("range", |b| {
        b.iter(|| black_box(s.between_selectivity(100, 2_000)))
    });
    g.bench_function("eqjoinsel", |b| {
        b.iter(|| black_box(eq_join_selectivity(&s, &s, 1e6, 1e6)))
    });
    g.finish();
}

criterion_group!(benches, bench_analyze, bench_selectivity);
criterion_main!(benches);
