//! Optimizer micro-benchmarks: DP join enumeration across query sizes,
//! the GEQO fallback, and plan re-costing under Γ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use reopt_common::{ColId, RelSet, TableId};
use reopt_optimizer::{CardOverrides, Optimizer};
use reopt_plan::query::ColRef;
use reopt_plan::{Predicate, Query, QueryBuilder};
use reopt_stats::{analyze_database, AnalyzeOpts, DatabaseStats};
use reopt_storage::{Column, ColumnDef, Database, LogicalType, Table, TableSchema};

fn chain_db(k: usize, vals: i64, per: usize) -> Database {
    let mut db = Database::new();
    for t in 0..k {
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("a", LogicalType::Int),
                ColumnDef::new("b", LogicalType::Int),
            ])?;
            let mut data = Vec::new();
            for v in 0..vals {
                data.extend(std::iter::repeat_n(v, per));
            }
            let mut tbl = Table::new(
                id,
                format!("r{t}"),
                schema,
                vec![
                    Column::from_i64(LogicalType::Int, data.clone()),
                    Column::from_i64(LogicalType::Int, data),
                ],
            )?;
            tbl.create_index(ColId::new(0))?;
            tbl.create_index(ColId::new(1))?;
            Ok(tbl)
        })
        .unwrap();
    }
    db
}

fn chain_query(k: usize) -> Query {
    let mut qb = QueryBuilder::new();
    let rels: Vec<_> = (0..k).map(|i| qb.add_relation(TableId::from(i))).collect();
    for (i, &r) in rels.iter().enumerate() {
        qb.add_predicate(Predicate::eq(r, ColId::new(0), (i % 2) as i64));
    }
    for w in rels.windows(2) {
        qb.add_join(
            ColRef::new(w[0], ColId::new(1)),
            ColRef::new(w[1], ColId::new(1)),
        );
    }
    qb.build()
}

fn setup(k: usize) -> (Database, DatabaseStats) {
    let db = chain_db(k, 50, 4);
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    (db, stats)
}

fn bench_dp(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer/dp");
    for k in [4usize, 6, 8, 10] {
        let (db, stats) = setup(k);
        let q = chain_query(k);
        g.bench_with_input(BenchmarkId::new("chain", k), &k, |b, _| {
            let opt = Optimizer::new(&db, &stats);
            b.iter(|| black_box(opt.optimize(&q).unwrap().plan.est_cost()))
        });
    }
    g.finish();
}

fn bench_geqo(c: &mut Criterion) {
    let k = 14;
    let (db, stats) = setup(k);
    let q = chain_query(k);
    let opt = Optimizer::new(&db, &stats); // 14 > geqo_threshold 12
    c.bench_function("optimizer/geqo_14rel", |b| {
        b.iter(|| black_box(opt.optimize(&q).unwrap().plan.est_cost()))
    });
}

fn bench_overrides(c: &mut Criterion) {
    let (db, stats) = setup(6);
    let q = chain_query(6);
    let opt = Optimizer::new(&db, &stats);
    let planned = opt.optimize(&q).unwrap();
    let mut gamma = CardOverrides::new();
    for (i, s) in planned.plan.logical_tree().join_sets().iter().enumerate() {
        gamma.insert(*s, (i as f64 + 1.0) * 100.0);
    }
    gamma.insert(RelSet::first_n(2), 1.0);
    let mut group = c.benchmark_group("optimizer/gamma");
    group.bench_function("reoptimize_with_gamma", |b| {
        b.iter(|| black_box(opt.optimize_with(&q, &gamma).unwrap().plan.est_cost()))
    });
    group.bench_function("cost_plan_under_gamma", |b| {
        b.iter(|| black_box(opt.cost_plan(&q, &planned.plan, &gamma).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_dp, bench_geqo, bench_overrides);
criterion_main!(benches);
