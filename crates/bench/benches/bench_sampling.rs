//! Sampling micro-benchmarks: sample construction and plan validation —
//! the per-round overhead of the re-optimization loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use reopt_optimizer::{Optimizer, OptimizerConfig};
use reopt_sampling::{validate_plan, SampleConfig, SampleStore, ValidationOpts};
use reopt_stats::{analyze_database, AnalyzeOpts};
use reopt_workloads::ott::{build_ott_database, ott_query, OttConfig};

fn bench_sample_build(c: &mut Criterion) {
    let db = build_ott_database(&OttConfig::default()).unwrap();
    let mut g = c.benchmark_group("sampling/build");
    for ratio in [0.01f64, 0.05, 0.2] {
        g.bench_with_input(
            BenchmarkId::new("ratio", format!("{ratio}")),
            &ratio,
            |b, &r| {
                b.iter(|| {
                    let s = SampleStore::build(
                        &db,
                        SampleConfig {
                            ratio: r,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    black_box(s.database().total_rows())
                })
            },
        );
    }
    g.finish();
}

fn bench_validation(c: &mut Criterion) {
    let db = build_ott_database(&OttConfig::default()).unwrap();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
    let opt = Optimizer::with_config(&db, &stats, OptimizerConfig::postgres_like());
    let q = ott_query(&db, &[0, 0, 0, 0, 1]).unwrap();
    let planned = opt.optimize(&q).unwrap();
    c.bench_function("sampling/validate_5rel_plan", |b| {
        b.iter(|| {
            let v = validate_plan(&q, &planned.plan, &samples, &ValidationOpts::default()).unwrap();
            black_box(v.delta.len())
        })
    });
}

criterion_group!(benches, bench_sample_build, bench_validation);
criterion_main!(benches);
