//! Mid-query re-optimization: end-to-end latency with the
//! `ReOptConfig::mid_query` knob on vs off, across OTT chains and the
//! TPC-H / TPC-DS template families, with machine-readable output in
//! `BENCH_midquery.json`.
//!
//! Each point measures the *whole* pipeline a served query pays — the
//! sampling re-optimization loop plus full-database execution — because
//! that is what the knob trades: suspension/replan overhead against the
//! chance to finish under a better plan. Hard templates (correlated
//! predicates the native optimizer misestimates) are where observed
//! cardinalities can pay; easy templates bound the overhead — the
//! `easy_max_regression_pct` field is the headline guardrail (target:
//! ≤ 5%). Results are result-equivalent by construction (proven by
//! `tests/midquery_equivalence.rs`); this harness asserts the row counts
//! agree on every shape anyway.
//!
//! Not a criterion harness (same rationale as `bench_parallel`): each
//! point is a best-of-`reps` wall time at `threads = 1` so CI numbers
//! are stable on one core. Pass `--quick` for the reduced configuration.

use std::time::Instant;

use serde::Serialize;

use reopt_common::rng::derive_rng_indexed;
use reopt_core::{ReOptConfig, ReOptimizer};
use reopt_executor::ExecOpts;
use reopt_optimizer::Optimizer;
use reopt_plan::Query;
use reopt_sampling::{SampleConfig, SampleStore};
use reopt_stats::{analyze_database, AnalyzeOpts, DatabaseStats};
use reopt_storage::Database;
use reopt_workloads::ott::{build_ott_database, ott_query, recommended_sample_ratio, OttConfig};
use reopt_workloads::{tpcds, tpch};

#[derive(Debug, Serialize)]
struct ShapeResult {
    workload: String,
    query: String,
    /// Correlated-predicate template (where mid-query repairs can pay).
    hard: bool,
    /// Join output rows (identical with the knob on and off).
    rows: u64,
    /// Best-of-reps end-to-end latency, knob off.
    ms_off: f64,
    /// Best-of-reps end-to-end latency, knob on.
    ms_on: f64,
    /// ms_off / ms_on (> 1 means mid-query won).
    speedup: f64,
    /// Suspensions the mid-query run performed.
    suspensions: usize,
    /// Replans that changed the remainder.
    plan_switches: usize,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: &'static str,
    quick: bool,
    shapes: Vec<ShapeResult>,
    /// Geomean speedup over the hard templates — the headline number.
    hard_geomean_speedup: f64,
    /// Geomean speedup over the easy templates (expected ≈ 1.0).
    easy_geomean_speedup: f64,
    /// Worst-case overhead on an easy template, percent (positive =
    /// regression; guardrail target ≤ 5).
    easy_max_regression_pct: f64,
}

struct Bound {
    db: Database,
    stats: DatabaseStats,
    samples: SampleStore,
}

impl Bound {
    fn new(db: Database, ratio: f64) -> Self {
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(
            &db,
            SampleConfig {
                ratio,
                ..Default::default()
            },
        )
        .unwrap();
        Bound { db, stats, samples }
    }

    /// Best-of-`reps` end-to-end (reopt loop + execution) wall time with
    /// the given knob setting; returns (ms, rows, suspensions, switches).
    fn measure(&self, q: &Query, mid_query: bool, reps: usize) -> (f64, u64, usize, usize) {
        let opt = Optimizer::new(&self.db, &self.stats);
        let config = ReOptConfig {
            mid_query,
            ..ReOptConfig::with_threads(1)
        };
        let re = ReOptimizer::with_config(&opt, &self.samples, config);
        let run = |_: usize| re.execute_with_opts(q, ExecOpts::serial()).unwrap();
        let warm = run(0); // warm-up (allocator, page cache)
        let (rows, stats) = (warm.run.join_rows(), warm.run.report.stats);
        let mut best = f64::INFINITY;
        for i in 0..reps {
            let t0 = Instant::now();
            let out = run(i + 1);
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(out.run.join_rows(), rows, "knob changed the answer");
        }
        (best, rows, stats.suspensions, stats.plan_switches)
    }

    fn shape(&self, workload: &str, name: &str, hard: bool, q: &Query, reps: usize) -> ShapeResult {
        let (ms_off, rows_off, _, _) = self.measure(q, false, reps);
        let (ms_on, rows_on, suspensions, plan_switches) = self.measure(q, true, reps);
        assert_eq!(rows_off, rows_on, "{workload}/{name}: results diverged");
        ShapeResult {
            workload: workload.to_string(),
            query: name.to_string(),
            hard,
            rows: rows_on,
            ms_off,
            ms_on,
            speedup: ms_off / ms_on.max(1e-9),
            suspensions,
            plan_switches,
        }
    }
}

fn geomean(logs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = logs.collect();
    if v.is_empty() {
        return 1.0;
    }
    (v.iter().map(|s| s.ln()).sum::<f64>() / v.len() as f64).exp()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Best-of-5 even in quick mode: the easy-regression guardrail divides
    // sub-millisecond numbers, so scheduler noise needs more chances to
    // cancel than the pure-throughput benches give it.
    let reps = if quick { 5 } else { 10 };
    let mut shapes = Vec::new();

    // OTT chains: the all-equal constants are the M^k blow-up (hard —
    // native estimates are off by orders of magnitude); the empty-edge
    // chain re-optimizes to a scan-dominated plan.
    let ott_config = OttConfig {
        rows_per_value: if quick { 24 } else { 48 },
        ..Default::default()
    };
    let ott = Bound::new(
        build_ott_database(&ott_config).unwrap(),
        recommended_sample_ratio(&ott_config),
    );
    for (consts, hard) in [
        (vec![0i64, 0, 0, 0], true),
        (vec![0, 0, 0, 1], false),
        (vec![0, 0, 0, 0, 1], false),
    ] {
        let q = ott_query(&ott.db, &consts).unwrap();
        let name = format!("chain{}/{consts:?}", consts.len());
        shapes.push(ott.shape("ott", &name, hard, &q, reps));
    }

    // TPC-H: hard templates q8/q9/q17/q21 cross correlated column pairs;
    // q1/q3/q5 are the easy guardrail.
    let tpch_bound = Bound::new(
        tpch::build_tpch_database(&tpch::TpchConfig {
            scale: if quick { 0.01 } else { 0.05 },
            ..Default::default()
        })
        .unwrap(),
        0.1,
    );
    for name in ["q1", "q3", "q5", "q8", "q9", "q21"] {
        let mut rng = derive_rng_indexed(0x31d, name, 0);
        let q = tpch::instantiate(&tpch_bound.db, name, &mut rng).unwrap();
        shapes.push(tpch_bound.shape("tpch", name, tpch::is_hard_template(name), &q, reps));
    }

    // TPC-DS: q50p is the paper's hand-tweaked hard variant; q3/q25/q50
    // are the well-estimated guardrail.
    let tpcds_bound = Bound::new(
        tpcds::build_tpcds_database(&tpcds::TpcdsConfig {
            scale: if quick { 0.05 } else { 0.2 },
            ..Default::default()
        })
        .unwrap(),
        0.1,
    );
    for name in ["q3", "q25", "q50", "q50p"] {
        let mut rng = derive_rng_indexed(0x31d, name, 1);
        let q = tpcds::instantiate(&tpcds_bound.db, name, &mut rng).unwrap();
        shapes.push(tpcds_bound.shape("tpcds", name, tpcds::is_hard_template(name), &q, reps));
    }

    let hard_geomean_speedup = geomean(shapes.iter().filter(|s| s.hard).map(|s| s.speedup));
    let easy_geomean_speedup = geomean(shapes.iter().filter(|s| !s.hard).map(|s| s.speedup));
    let easy_max_regression_pct = shapes
        .iter()
        .filter(|s| !s.hard)
        .map(|s| (1.0 / s.speedup - 1.0) * 100.0)
        .fold(f64::NEG_INFINITY, f64::max);

    let report = BenchReport {
        bench: "bench_midquery",
        quick,
        shapes,
        hard_geomean_speedup,
        easy_geomean_speedup,
        easy_max_regression_pct,
    };

    println!(
        "{:<26} {:>5} {:>10} {:>10} {:>8} {:>5} {:>7}",
        "shape", "hard", "off ms", "on ms", "speedup", "susp", "switch"
    );
    for s in &report.shapes {
        println!(
            "{:<26} {:>5} {:>10.3} {:>10.3} {:>7.2}x {:>5} {:>7}",
            format!("{}/{}", s.workload, s.query),
            s.hard,
            s.ms_off,
            s.ms_on,
            s.speedup,
            s.suspensions,
            s.plan_switches
        );
    }
    println!(
        "hard geomean {:.2}x | easy geomean {:.2}x | easy max regression {:.1}%",
        report.hard_geomean_speedup, report.easy_geomean_speedup, report.easy_max_regression_pct
    );

    // Anchor the output at the workspace root (cargo runs benches with
    // cwd = the package directory) so CI finds one canonical path.
    let out = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(pkg) => std::path::Path::new(&pkg)
            .ancestors()
            .nth(2)
            .unwrap()
            .join("BENCH_midquery.json"),
        Err(_) => std::path::PathBuf::from("BENCH_midquery.json"),
    };
    let json = serde_json::to_string(&report).unwrap();
    std::fs::write(&out, &json).unwrap();
    println!("wrote {}", out.display());
}
