//! Query-service latency and throughput: cold misses (full sampling-based
//! re-optimization), warm template hits, and contended single-flight
//! admission, with machine-readable output in `BENCH_service.json` so the
//! serving-layer perf trajectory is tracked in CI alongside
//! `BENCH_incremental.json`.
//!
//! Not a criterion harness: each regime drives a real [`QueryService`]
//! end to end. Pass `--quick` for the reduced-iteration CI configuration.
//!
//! Regimes:
//! * **cold** — fresh template on a fresh cache: pays the whole
//!   re-optimization loop. One measurement per template.
//! * **warm** — the same template again: a plan-cache hash lookup. The
//!   acceptance bar for the serving layer is `warm_speedup > 10` on every
//!   template (recorded per query and as a geomean).
//! * **contended** — K threads submit the same cold template through one
//!   barrier: exactly one re-optimization may run (single-flight); the
//!   report records `reopts_run` so a regression to thundering-herd shows
//!   up as `reopts_run > 1`, not just as latency noise.
//! * **throughput** — K sessions × a mixed template workload with varying
//!   literals over a warm cache: sustained queries/second.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use serde::Serialize;

use reopt_sampling::SampleConfig;
use reopt_service::{PlanSource, QueryService, ServiceConfig};
use reopt_stats::AnalyzeOpts;
use reopt_storage::Database;
use reopt_workloads::ott::{
    build_ott_database, ott_query, ott_query_suite, recommended_sample_ratio, OttConfig,
};

#[derive(Debug, Serialize)]
struct TemplateResult {
    workload: String,
    template: String,
    /// Cold-miss latency (full re-optimization), milliseconds.
    cold_ms: f64,
    /// Mean warm-hit latency over `warm_iters` submissions, milliseconds.
    warm_mean_ms: f64,
    warm_iters: usize,
    /// cold_ms / warm_mean_ms — the acceptance bar is >10.
    warm_speedup: f64,
    /// Rounds of the cold re-optimization.
    rounds: usize,
}

#[derive(Debug, Serialize)]
struct ContendedResult {
    threads: usize,
    /// Wall time for all threads to receive the plan, milliseconds.
    wall_ms: f64,
    /// Mean per-session latency, milliseconds.
    mean_session_ms: f64,
    /// Re-optimizations actually run — single-flight demands exactly 1.
    reopts_run: u64,
    /// Sessions that blocked on the leader (the rest warm-hit after it
    /// landed).
    coalesced: u64,
    warm_hits: u64,
}

#[derive(Debug, Serialize)]
struct ThroughputResult {
    threads: usize,
    queries: usize,
    wall_ms: f64,
    queries_per_sec: f64,
    warm_hit_rate: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: &'static str,
    quick: bool,
    templates: Vec<TemplateResult>,
    /// Geometric mean of per-template warm speedups.
    geomean_warm_speedup: f64,
    /// Minimum per-template warm speedup (the acceptance criterion
    /// `> 10` binds here, not just on the mean).
    min_warm_speedup: f64,
    contended: ContendedResult,
    throughput: ThroughputResult,
}

fn fresh_service(db: &Arc<Database>, ratio: f64) -> Arc<QueryService> {
    Arc::new(
        QueryService::from_database(
            Arc::clone(db),
            &AnalyzeOpts::default(),
            SampleConfig {
                ratio,
                ..Default::default()
            },
            ServiceConfig::default(),
        )
        .unwrap(),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let warm_iters = if quick { 200 } else { 2000 };

    let ott_config = OttConfig {
        rows_per_value: 12,
        ..Default::default()
    };
    let db = Arc::new(build_ott_database(&ott_config).unwrap());
    let ratio = recommended_sample_ratio(&ott_config);

    // --- Cold vs warm. Every OTT query of one chain length is the same
    // *template* (the suite varies only the constants), so each length is
    // one cold miss; the warm loop then cycles the suite's literal
    // variants — the parameterized-reuse regime a server actually sees.
    let mut templates = Vec::new();
    let service = fresh_service(&db, ratio);
    for (n, m) in [(3usize, 2usize), (4, 2), (5, 3), (6, 3)] {
        let instances: Vec<_> = ott_query_suite(n, m)
            .iter()
            .map(|consts| ott_query(&db, consts).unwrap())
            .collect();
        let cold = service.submit(&instances[0]).unwrap();
        assert_eq!(cold.source, PlanSource::ColdMiss);
        let t0 = Instant::now();
        for i in 0..warm_iters {
            let r = service.submit(&instances[i % instances.len()]).unwrap();
            debug_assert_eq!(r.source, PlanSource::WarmHit);
        }
        let warm_mean_ms = t0.elapsed().as_secs_f64() * 1e3 / warm_iters as f64;
        let cold_ms = cold.latency.as_secs_f64() * 1e3;
        templates.push(TemplateResult {
            workload: "ott".into(),
            template: format!("chain{n}"),
            cold_ms,
            warm_mean_ms,
            warm_iters,
            warm_speedup: cold_ms / warm_mean_ms.max(1e-9),
            rounds: cold.rounds,
        });
    }
    let geomean_warm_speedup =
        (templates.iter().map(|t| t.warm_speedup.ln()).sum::<f64>() / templates.len() as f64).exp();
    let min_warm_speedup = templates
        .iter()
        .map(|t| t.warm_speedup)
        .fold(f64::INFINITY, f64::min);

    // --- Contended: K sessions race one cold template. ---
    let threads = 8usize;
    let service = fresh_service(&db, ratio);
    let q = ott_query(&db, &[0, 0, 0, 0, 1]).unwrap();
    let barrier = Barrier::new(threads);
    let t0 = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let service = &service;
                let q = &q;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    service.submit(q).unwrap().latency
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = service.stats();
    assert_eq!(stats.reopts_run, 1, "single-flight violated: {stats:?}");
    let contended = ContendedResult {
        threads,
        wall_ms,
        mean_session_ms: latencies.iter().map(|l| l.as_secs_f64() * 1e3).sum::<f64>()
            / threads as f64,
        reopts_run: stats.reopts_run,
        coalesced: stats.coalesced,
        warm_hits: stats.warm_hits,
    };

    // --- Throughput: a mixed warm workload (four distinct templates,
    // varying literals) across sessions. ---
    let service = fresh_service(&db, ratio);
    let shapes: Vec<_> = [(3usize, 2usize), (4, 2), (5, 3), (6, 3)]
        .iter()
        .flat_map(|&(n, m)| {
            ott_query_suite(n, m)
                .iter()
                .take(2)
                .map(|consts| ott_query(&db, consts).unwrap())
                .collect::<Vec<_>>()
        })
        .collect();
    for q in &shapes {
        service.submit(q).unwrap(); // warm the cache
    }
    let per_thread = if quick { 500 } else { 5000 };
    let barrier = Barrier::new(threads);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let service = &service;
            let shapes = &shapes;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..per_thread {
                    let q = &shapes[(t + i) % shapes.len()];
                    service.submit(q).unwrap();
                }
            });
        }
    });
    let wall = t0.elapsed();
    let stats = service.stats();
    let total = threads * per_thread;
    let throughput = ThroughputResult {
        threads,
        queries: total,
        wall_ms: wall.as_secs_f64() * 1e3,
        queries_per_sec: total as f64 / wall.as_secs_f64(),
        warm_hit_rate: stats.warm_hits as f64 / stats.submitted as f64,
    };

    let report = BenchReport {
        bench: "bench_service",
        quick,
        templates,
        geomean_warm_speedup,
        min_warm_speedup,
        contended,
        throughput,
    };

    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "template", "cold ms", "warm µs", "speedup"
    );
    for t in &report.templates {
        println!(
            "{:<28} {:>10.3} {:>12.3} {:>9.0}x",
            t.template,
            t.cold_ms,
            t.warm_mean_ms * 1e3,
            t.warm_speedup
        );
    }
    println!(
        "geomean warm speedup: {:.0}x (min {:.0}x)",
        report.geomean_warm_speedup, report.min_warm_speedup
    );
    println!(
        "contended ({} threads): wall {:.3} ms, reopts_run {}, coalesced {}, warm {}",
        report.contended.threads,
        report.contended.wall_ms,
        report.contended.reopts_run,
        report.contended.coalesced,
        report.contended.warm_hits
    );
    println!(
        "throughput: {:.0} q/s over {} queries on {} threads (warm-hit rate {:.3})",
        report.throughput.queries_per_sec,
        report.throughput.queries,
        report.throughput.threads,
        report.throughput.warm_hit_rate
    );

    // Anchor the output at the workspace root (cargo runs benches with
    // cwd = the package directory) so CI finds one canonical path.
    let out = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(pkg) => std::path::Path::new(&pkg)
            .ancestors()
            .nth(2)
            .unwrap()
            .join("BENCH_service.json"),
        Err(_) => std::path::PathBuf::from("BENCH_service.json"),
    };
    let json = serde_json::to_string(&report).unwrap();
    std::fs::write(&out, &json).unwrap();
    println!("wrote {}", out.display());
}
