//! Columnar (batch-at-a-time) vs row-at-a-time engine: scan-filter,
//! join-heavy, and agg-heavy microbenchmarks plus the full re-optimization
//! loop, with machine-readable output in `BENCH_columnar.json` so the
//! vectorization win is tracked in CI alongside `BENCH_parallel.json`.
//!
//! Not a criterion harness: every shape runs end to end under
//! `ExecOpts::columnar = Some(false)` (the row engine) and `Some(true)`
//! (the columnar engine), at serial and 4-thread settings — the engines
//! are bit-identical (asserted here per point, proven exhaustively by
//! `tests/parallel_determinism.rs` and `tests/midquery_equivalence.rs`),
//! so the *only* thing that may move is wall-clock. The headline number is
//! the geomean row/columnar speedup over the serial scan/join/agg
//! microbenches. Pass `--quick` for the reduced CI configuration.

use std::time::Instant;

use serde::Serialize;

use reopt_common::rng::derive_rng_indexed;
use reopt_common::{ColId, RelId};
use reopt_core::{ReOptConfig, ReOptimizer};
use reopt_executor::{ExecOpts, Executor};
use reopt_optimizer::Optimizer;
use reopt_plan::physical::PlanNodeInfo;
use reopt_plan::query::{AggExpr, AggSpec, ColRef};
use reopt_plan::{AccessPath, JoinAlgo, PhysicalPlan, Predicate, QueryBuilder};
use reopt_sampling::{SampleConfig, SampleStore};
use reopt_stats::{analyze_database, AnalyzeOpts};
use reopt_storage::value::NULL_SENTINEL;
use reopt_storage::{Column, ColumnDef, Database, LogicalType, Table, TableSchema};
use reopt_workloads::ott::{build_ott_database, ott_query, recommended_sample_ratio, OttConfig};
use reopt_workloads::tpch::{build_tpch_database, instantiate, TpchConfig};

#[derive(Debug, Serialize)]
struct EnginePoint {
    threads: usize,
    /// Best-of-reps wall time of the row engine, milliseconds.
    row_ms: f64,
    /// Best-of-reps wall time of the columnar engine, milliseconds.
    columnar_ms: f64,
    /// row_ms / columnar_ms.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct ShapeResult {
    /// "scan" | "join" | "agg" | "reopt".
    kind: &'static str,
    name: String,
    /// Output rows (or groups) — identical under both engines.
    rows: u64,
    points: Vec<EnginePoint>,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: &'static str,
    quick: bool,
    available_parallelism: usize,
    shapes: Vec<ShapeResult>,
    /// Geomean serial columnar speedup over the scan/join/agg microbenches
    /// — the acceptance headline.
    micro_speedup_serial: f64,
    /// Geomean columnar speedup of the full re-optimization loop shapes.
    reopt_speedup_serial: f64,
}

/// Time `run(opts)` best-of-`reps` for both engines at each thread count.
fn sweep(
    reps: usize,
    threads: &[usize],
    mut run: impl FnMut(ExecOpts) -> u64,
) -> (u64, Vec<EnginePoint>) {
    let mut rows = 0u64;
    let points = threads
        .iter()
        .map(|&threads| {
            let mut best = [f64::INFINITY; 2];
            for (slot, columnar) in [false, true].into_iter().enumerate() {
                let opts = ExecOpts {
                    threads,
                    columnar: Some(columnar),
                    ..Default::default()
                };
                let n = run(opts.clone()); // warm-up (allocator, page cache)
                if rows == 0 {
                    rows = n;
                }
                assert_eq!(rows, n, "engine or thread count changed the answer");
                for _ in 0..reps {
                    let t0 = Instant::now();
                    run(opts.clone());
                    best[slot] = best[slot].min(t0.elapsed().as_secs_f64() * 1e3);
                }
            }
            EnginePoint {
                threads,
                row_ms: best[0],
                columnar_ms: best[1],
                speedup: best[0] / best[1].max(1e-9),
            }
        })
        .collect();
    (rows, points)
}

fn scan_node(rel: u32, table: u32) -> PhysicalPlan {
    PhysicalPlan::Scan {
        rel: RelId::new(rel),
        table: TableId::new(table),
        access: AccessPath::SeqScan,
        info: PlanNodeInfo::default(),
    }
}

use reopt_common::TableId;

/// One wide table for the scan and agg shapes: a dictionary-coded region
/// column, a skewed group column, and two value columns with NULLs.
fn micro_db(n: i64) -> Database {
    let mut db = Database::new();
    let regions = ["asia", "europe", "america", "africa", "oceania"];
    db.add_table_with(|id| {
        let schema = TableSchema::new(vec![
            ColumnDef::new("region", LogicalType::Dict),
            ColumnDef::new("grp", LogicalType::Int),
            ColumnDef::new("a", LogicalType::Int),
            ColumnDef::new("b", LogicalType::Int),
        ])?;
        let region: Vec<&str> = (0..n).map(|i| regions[(i % 5) as usize]).collect();
        let grp: Vec<i64> = (0..n).map(|i| (i * 7919) % 200).collect();
        let a: Vec<i64> = (0..n)
            .map(|i| {
                if i % 53 == 0 {
                    NULL_SENTINEL
                } else {
                    (i * 2654435761) % 10_000
                }
            })
            .collect();
        let b: Vec<i64> = (0..n).map(|i| (i * 40503) % 1_000).collect();
        Table::new(
            id,
            "wide",
            schema,
            vec![
                Column::from_strings(&region),
                Column::from_i64(LogicalType::Int, grp),
                Column::from_i64(LogicalType::Int, a),
                Column::from_i64(LogicalType::Int, b),
            ],
        )
    })
    .unwrap();
    db
}

/// Two join tables with skewed key multiplicity (value v matches v%5+1
/// build rows), sized to exercise both the serial and partitioned paths.
fn join_db(n: i64) -> Database {
    let mut db = Database::new();
    db.add_table_with(|id| {
        let schema = TableSchema::new(vec![
            ColumnDef::new("k", LogicalType::Int),
            ColumnDef::new("v", LogicalType::Int),
        ])?;
        let keys: Vec<i64> = (0..n)
            .map(|i| {
                if i % 101 == 0 {
                    NULL_SENTINEL
                } else {
                    i % 4096
                }
            })
            .collect();
        Table::new(
            id,
            "probe",
            schema,
            vec![
                Column::from_i64(LogicalType::Int, keys),
                Column::from_i64(LogicalType::Int, (0..n).collect()),
            ],
        )
    })
    .unwrap();
    db.add_table_with(|id| {
        let schema = TableSchema::new(vec![
            ColumnDef::new("k", LogicalType::Int),
            ColumnDef::new("w", LogicalType::Int),
        ])?;
        let mut keys = Vec::new();
        for v in 0..4096i64 {
            for _ in 0..(v % 5 + 1) {
                keys.push(v);
            }
        }
        let len = keys.len() as i64;
        Table::new(
            id,
            "build",
            schema,
            vec![
                Column::from_i64(LogicalType::Int, keys),
                Column::from_i64(LogicalType::Int, (0..len).collect()),
            ],
        )
    })
    .unwrap();
    db
}

fn measure_scan(n: i64, reps: usize, threads: &[usize]) -> ShapeResult {
    let db = micro_db(n);
    let mut qb = QueryBuilder::new();
    let r = qb.add_relation(db.table_id("wide").unwrap());
    // A dictionary predicate plus two numeric ones: the columnar win here
    // is the hoisted operator dispatch and the selection-vector refine.
    qb.add_predicate(Predicate::eq(r, ColId::new(0), "asia"));
    qb.add_predicate(Predicate::between(r, ColId::new(2), 1000i64, 8000i64));
    qb.add_predicate(Predicate::gt(r, ColId::new(3), 100i64));
    let q = qb.build();
    let plan = scan_node(0, 0);
    let (rows, points) = sweep(reps, threads, |opts| {
        let exec = Executor::with_opts(&db, opts);
        exec.run_rowset(&q, &plan).unwrap().0.len() as u64
    });
    ShapeResult {
        kind: "scan",
        name: format!("filter3/{n}rows"),
        rows,
        points,
    }
}

fn measure_join(n: i64, reps: usize, threads: &[usize]) -> ShapeResult {
    let db = join_db(n);
    let mut qb = QueryBuilder::new();
    let a = qb.add_relation(db.table_id("probe").unwrap());
    let b = qb.add_relation(db.table_id("build").unwrap());
    qb.add_predicate(Predicate::gt(a, ColId::new(1), 5i64));
    qb.add_join(ColRef::new(a, ColId::new(0)), ColRef::new(b, ColId::new(0)));
    let q = qb.build();
    let plan = PhysicalPlan::Join {
        algo: JoinAlgo::Hash,
        left: Box::new(scan_node(0, 0)),
        right: Box::new(scan_node(1, 1)),
        keys: vec![(
            ColRef::new(RelId::new(0), ColId::new(0)),
            ColRef::new(RelId::new(1), ColId::new(0)),
        )],
        info: PlanNodeInfo::default(),
    };
    let (rows, points) = sweep(reps, threads, |opts| {
        let exec = Executor::with_opts(&db, opts);
        exec.run_rowset(&q, &plan).unwrap().0.len() as u64
    });
    ShapeResult {
        kind: "join",
        name: format!("hash/{n}rows"),
        rows,
        points,
    }
}

fn measure_agg(n: i64, reps: usize, threads: &[usize]) -> ShapeResult {
    let db = micro_db(n);
    let mut qb = QueryBuilder::new();
    let r = qb.add_relation(db.table_id("wide").unwrap());
    let region = ColRef::new(r, ColId::new(0));
    let grp = ColRef::new(r, ColId::new(1));
    let a = ColRef::new(r, ColId::new(2));
    let b = ColRef::new(r, ColId::new(3));
    qb.aggregate(AggSpec {
        group_by: vec![region, grp],
        aggs: vec![
            AggExpr::count_star(),
            AggExpr::sum(a),
            AggExpr::avg(a),
            AggExpr::min(b),
            AggExpr::max(b),
        ],
    });
    let q = qb.build();
    let plan = scan_node(0, 0);
    let (rows, points) = sweep(reps, threads, |opts| {
        let exec = Executor::with_opts(&db, opts);
        let out = exec.run(&q, &plan).unwrap();
        out.agg.map_or(0, |a| a.rows.len()) as u64
    });
    ShapeResult {
        kind: "agg",
        name: format!("group1000/{n}rows"),
        rows,
        points,
    }
}

/// The full loop: sampling re-optimization (dry-runs over the samples)
/// followed by final execution, engine pinned end to end through
/// `ReOptConfig::validation.columnar` and `ExecOpts::columnar`.
fn measure_reopt_query(
    db: &Database,
    samples: &SampleStore,
    q: &reopt_plan::Query,
    label: &str,
    reps: usize,
) -> ShapeResult {
    let stats = analyze_database(db, &AnalyzeOpts::default()).unwrap();
    let opt = Optimizer::new(db, &stats);
    let (rows, points) = sweep(reps, &[1], |opts| {
        let mut config = ReOptConfig::with_threads(1);
        config.validation.columnar = opts.columnar;
        let re = ReOptimizer::with_config(&opt, samples, config);
        let out = re.execute_with_opts(q, opts).unwrap();
        out.run.rows.len() as u64
    });
    ShapeResult {
        kind: "reopt",
        name: label.to_string(),
        rows,
        points,
    }
}

fn measure_reopt_tpch(scale: f64, name: &str, reps: usize) -> ShapeResult {
    let db = build_tpch_database(&TpchConfig {
        scale,
        ..Default::default()
    })
    .unwrap();
    let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
    let mut rng = derive_rng_indexed(0xc01a, name, 0);
    let q = instantiate(&db, name, &mut rng).unwrap();
    measure_reopt_query(&db, &samples, &q, &format!("tpch/{name}"), reps)
}

/// The OTT all-equal chain is the M^k join blow-up: final execution
/// dominates the loop, so this shape shows what vectorization buys a
/// *served* re-optimized query rather than the planning overhead.
fn measure_reopt_ott(rows_per_value: usize, reps: usize) -> ShapeResult {
    let config = OttConfig {
        rows_per_value,
        ..Default::default()
    };
    let db = build_ott_database(&config).unwrap();
    let samples = SampleStore::build(
        &db,
        SampleConfig {
            ratio: recommended_sample_ratio(&config),
            ..Default::default()
        },
    )
    .unwrap();
    let q = ott_query(&db, &[0, 0, 0, 0]).unwrap();
    measure_reopt_query(&db, &samples, &q, "ott/chain4", reps)
}

fn geomean(shapes: &[ShapeResult], pick: impl Fn(&ShapeResult) -> bool) -> f64 {
    let logs: Vec<f64> = shapes
        .iter()
        .filter(|s| pick(s))
        .filter_map(|s| s.points.iter().find(|p| p.threads == 1))
        .map(|p| p.speedup.ln())
        .collect();
    if logs.is_empty() {
        return 1.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 10 };
    let rows = if quick { 400_000 } else { 2_000_000 };
    let join_rows = if quick { 200_000 } else { 1_000_000 };
    let threads = [1usize, 4];

    let mut shapes = vec![
        measure_scan(rows, reps, &threads),
        measure_join(join_rows, reps, &threads),
        measure_agg(rows, reps, &threads),
        measure_reopt_ott(if quick { 24 } else { 48 }, reps),
        measure_reopt_tpch(if quick { 0.01 } else { 0.05 }, "q5", reps),
        measure_reopt_tpch(if quick { 0.01 } else { 0.05 }, "q9", reps),
    ];
    shapes.shrink_to_fit();

    let report = BenchReport {
        bench: "bench_columnar",
        quick,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        micro_speedup_serial: geomean(&shapes, |s| s.kind != "reopt"),
        reopt_speedup_serial: geomean(&shapes, |s| s.kind == "reopt"),
        shapes,
    };

    println!(
        "{:<26} {:<6} {:>9} {:>9} {:>9} {:>8}",
        "shape", "kind", "rows", "row ms", "col ms", "speedup"
    );
    for s in &report.shapes {
        for p in &s.points {
            println!(
                "{:<26} {:<6} {:>9} {:>9.3} {:>9.3} {:>7.2}x  (threads={})",
                s.name, s.kind, s.rows, p.row_ms, p.columnar_ms, p.speedup, p.threads
            );
        }
    }
    println!(
        "geomean serial speedup: micro {:.2}x, full re-opt loop {:.2}x",
        report.micro_speedup_serial, report.reopt_speedup_serial
    );

    // Anchor the output at the workspace root (cargo runs benches with
    // cwd = the package directory) so CI finds one canonical path.
    let out = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(pkg) => std::path::Path::new(&pkg)
            .ancestors()
            .nth(2)
            .unwrap()
            .join("BENCH_columnar.json"),
        Err(_) => std::path::PathBuf::from("BENCH_columnar.json"),
    };
    let json = serde_json::to_string(&report).unwrap();
    std::fs::write(&out, &json).unwrap();
    println!("wrote {}", out.display());
}
