//! Executor micro-benchmarks: scans and the three join algorithms on
//! synthetic integer tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use reopt_common::{ColId, TableId};
use reopt_executor::execute_plan;
use reopt_plan::physical::PlanNodeInfo;
use reopt_plan::query::ColRef;
use reopt_plan::{AccessPath, JoinAlgo, PhysicalPlan, Predicate, QueryBuilder};
use reopt_storage::{Column, ColumnDef, Database, LogicalType, Table, TableSchema};

fn make_db(rows: usize) -> Database {
    let mut db = Database::new();
    for name in ["l", "r"] {
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("k", LogicalType::Int),
                ColumnDef::new("v", LogicalType::Int),
            ])?;
            let mut t = Table::new(
                id,
                name,
                schema,
                vec![
                    Column::from_i64(
                        LogicalType::Int,
                        (0..rows as i64).map(|i| i % 10_000).collect(),
                    ),
                    Column::from_i64(LogicalType::Int, (0..rows as i64).collect()),
                ],
            )?;
            t.create_index(ColId::new(0))?;
            Ok(t)
        })
        .unwrap();
    }
    db
}

fn scan_plan(access: AccessPath) -> PhysicalPlan {
    PhysicalPlan::Scan {
        rel: reopt_common::RelId::new(0),
        table: TableId::new(0),
        access,
        info: PlanNodeInfo::default(),
    }
}

fn join_plan(algo: JoinAlgo) -> PhysicalPlan {
    PhysicalPlan::Join {
        algo,
        left: Box::new(scan_plan(AccessPath::SeqScan)),
        right: Box::new(PhysicalPlan::Scan {
            rel: reopt_common::RelId::new(1),
            table: TableId::new(1),
            access: AccessPath::SeqScan,
            info: PlanNodeInfo::default(),
        }),
        keys: vec![(
            ColRef::new(reopt_common::RelId::new(0), ColId::new(0)),
            ColRef::new(reopt_common::RelId::new(1), ColId::new(0)),
        )],
        info: PlanNodeInfo::default(),
    }
}

fn bench_scans(c: &mut Criterion) {
    let db = make_db(100_000);
    let mut qb = QueryBuilder::new();
    let rel = qb.add_relation(TableId::new(0));
    qb.add_predicate(Predicate::eq(rel, ColId::new(0), 7i64));
    let q = qb.build();
    let mut g = c.benchmark_group("executor/scan");
    g.bench_function("seq_scan_eq", |b| {
        let plan = scan_plan(AccessPath::SeqScan);
        b.iter(|| black_box(execute_plan(&db, &q, &plan).unwrap().join_rows))
    });
    g.bench_function("index_scan_eq", |b| {
        let plan = scan_plan(AccessPath::IndexScan { col: ColId::new(0) });
        b.iter(|| black_box(execute_plan(&db, &q, &plan).unwrap().join_rows))
    });
    g.finish();
}

fn bench_joins(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor/join");
    for rows in [10_000usize, 50_000] {
        let db = make_db(rows);
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(TableId::new(0));
        let b_rel = qb.add_relation(TableId::new(1));
        qb.add_join(
            ColRef::new(a, ColId::new(0)),
            ColRef::new(b_rel, ColId::new(0)),
        );
        let q = qb.build();
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::IndexNested] {
            g.bench_with_input(
                BenchmarkId::new(format!("{algo:?}"), rows),
                &rows,
                |b, _| {
                    let plan = join_plan(algo);
                    b.iter(|| black_box(execute_plan(&db, &q, &plan).unwrap().join_rows))
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_scans, bench_joins);
criterion_main!(benches);
