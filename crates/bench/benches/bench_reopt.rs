//! End-to-end re-optimization loop benchmarks: the full Algorithm 1 cost
//! for OTT and TPC-H-like queries (the paper's "re-optimization time is
//! ignorable" claim, measured directly).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use reopt_common::rng::derive_rng_indexed;
use reopt_core::ReOptimizer;
use reopt_optimizer::Optimizer;
use reopt_sampling::{SampleConfig, SampleStore};
use reopt_stats::{analyze_database, AnalyzeOpts};
use reopt_workloads::ott::{build_ott_database, ott_query, recommended_sample_ratio, OttConfig};
use reopt_workloads::tpch::{build_tpch_database, instantiate, TpchConfig};

fn bench_ott_loop(c: &mut Criterion) {
    let config = OttConfig::default();
    let db = build_ott_database(&config).unwrap();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(
        &db,
        SampleConfig {
            ratio: recommended_sample_ratio(&config),
            ..Default::default()
        },
    )
    .unwrap();
    let opt = Optimizer::new(&db, &stats);
    let re = ReOptimizer::new(&opt, &samples);
    let q = ott_query(&db, &[0, 0, 0, 0, 1]).unwrap();
    c.bench_function("reopt/ott_5rel_loop", |b| {
        b.iter(|| black_box(re.run(&q).unwrap().num_rounds()))
    });
}

fn bench_tpch_loop(c: &mut Criterion) {
    let db = build_tpch_database(&TpchConfig {
        scale: 0.01,
        ..Default::default()
    })
    .unwrap();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
    let opt = Optimizer::new(&db, &stats);
    let re = ReOptimizer::new(&opt, &samples);
    let mut g = c.benchmark_group("reopt/tpch_loop");
    for name in ["q3", "q9", "q21"] {
        let mut rng = derive_rng_indexed(9, name, 0);
        let q = instantiate(&db, name, &mut rng).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| black_box(re.run(&q).unwrap().num_rounds()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ott_loop, bench_tpch_loop);
criterion_main!(benches);
