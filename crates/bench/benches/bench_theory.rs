//! Theory-toolkit benchmarks: the S_N closed form and the Procedure 1
//! simulation (Figure 3's ingredients).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use reopt_analysis::{s_n, simulate_mean};

fn bench_sn(c: &mut Criterion) {
    let mut g = c.benchmark_group("theory/s_n");
    for n in [1_000u64, 100_000, 1_000_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(s_n(n)))
        });
    }
    g.finish();
}

fn bench_procedure1(c: &mut Criterion) {
    c.bench_function("theory/procedure1_n100_x100", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(simulate_mean(100, 100, seed))
        })
    });
}

criterion_group!(benches, bench_sn, bench_procedure1);
criterion_main!(benches);
