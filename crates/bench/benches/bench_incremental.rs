//! From-scratch vs incremental re-optimization round latency, measured on
//! the OTT chains and the TPC-H join queries, with machine-readable output
//! in `BENCH_incremental.json` so the perf trajectory is tracked in CI.
//!
//! Not a criterion harness: each workload runs the full Algorithm 1 loop
//! under both settings of the `incremental` knob and reports total loop
//! time, per-round mean, and the reuse counters that explain the gap.
//! Pass `--quick` for the reduced-iteration CI configuration.

use std::time::Instant;

use serde::Serialize;

use reopt_common::rng::derive_rng_indexed;
use reopt_core::{ReOptConfig, ReOptimizer};
use reopt_optimizer::Optimizer;
use reopt_plan::Query;
use reopt_sampling::{SampleConfig, SampleStore};
use reopt_stats::{analyze_database, AnalyzeOpts, DatabaseStats};
use reopt_storage::Database;
use reopt_workloads::ott::{
    build_ott_database, ott_query, ott_query_suite, recommended_sample_ratio, OttConfig,
};
use reopt_workloads::tpch::{build_tpch_database, instantiate, TpchConfig};

#[derive(Debug, Serialize)]
struct ModeResult {
    /// Total Algorithm 1 loop wall time across repetitions, milliseconds.
    total_loop_ms: f64,
    /// Mean wall time of one round, milliseconds.
    mean_round_ms: f64,
    /// Optimizer invocations per repetition.
    rounds: usize,
    /// DP subsets (re-)planned per repetition, summed over rounds.
    dp_subsets_replanned: usize,
    /// DP subsets reused from the memo per repetition.
    dp_subsets_reused: usize,
    /// Sample dry-run subtrees replayed from the cache per repetition.
    sample_cache_hits: usize,
    /// Sample dry-run subtrees executed per repetition.
    sample_subtrees_executed: usize,
}

#[derive(Debug, Serialize)]
struct QueryResult {
    workload: String,
    query: String,
    repetitions: usize,
    from_scratch: ModeResult,
    incremental: ModeResult,
    /// total_loop_ms(from_scratch) / total_loop_ms(incremental).
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: &'static str,
    quick: bool,
    queries: Vec<QueryResult>,
    /// Geometric mean of per-query speedups.
    geomean_speedup: f64,
}

struct Bound {
    db: Database,
    stats: DatabaseStats,
    samples: SampleStore,
}

impl Bound {
    fn new(db: Database, ratio: f64) -> Self {
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(
            &db,
            SampleConfig {
                ratio,
                ..Default::default()
            },
        )
        .unwrap();
        Bound { db, stats, samples }
    }

    fn measure(&self, q: &Query, incremental: bool, reps: usize) -> ModeResult {
        let opt = Optimizer::new(&self.db, &self.stats);
        let re = ReOptimizer::with_config(
            &opt,
            &self.samples,
            ReOptConfig {
                incremental,
                ..Default::default()
            },
        );
        // Warm-up run (page in samples, allocator steady state).
        let _ = re.run(q).unwrap();
        let t0 = Instant::now();
        let mut last = None;
        for _ in 0..reps {
            last = Some(re.run(q).unwrap());
        }
        let total_ms = t0.elapsed().as_secs_f64() * 1e3;
        let report = last.unwrap();
        ModeResult {
            total_loop_ms: total_ms,
            mean_round_ms: total_ms / (reps * report.num_rounds()) as f64,
            rounds: report.num_rounds(),
            dp_subsets_replanned: report.total_dp_subsets_replanned(),
            dp_subsets_reused: report.total_dp_subsets_reused(),
            sample_cache_hits: report.total_sample_cache_hits(),
            sample_subtrees_executed: report.total_sample_subtrees_executed(),
        }
    }

    fn run_query(&self, workload: &str, name: &str, q: &Query, reps: usize) -> QueryResult {
        let from_scratch = self.measure(q, false, reps);
        let incremental = self.measure(q, true, reps);
        let speedup = from_scratch.total_loop_ms / incremental.total_loop_ms.max(1e-9);
        QueryResult {
            workload: workload.to_string(),
            query: name.to_string(),
            repetitions: reps,
            from_scratch,
            incremental,
            speedup,
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 20 };
    let mut queries = Vec::new();

    // OTT chains (5- and 6-relation suites; every query has empty edges).
    let ott_config = OttConfig {
        rows_per_value: 12,
        ..Default::default()
    };
    let ott_db = build_ott_database(&ott_config).unwrap();
    let ott = Bound::new(ott_db, recommended_sample_ratio(&ott_config));
    for (n, m) in [(5usize, 3usize), (6, 3)] {
        for consts in ott_query_suite(n, m)
            .into_iter()
            .take(if quick { 2 } else { usize::MAX })
        {
            let q = ott_query(&ott.db, &consts).unwrap();
            queries.push(ott.run_query("ott", &format!("chain{n}/{consts:?}"), &q, reps));
        }
    }

    // TPC-H join templates.
    let tpch_db = build_tpch_database(&TpchConfig {
        scale: 0.01,
        ..Default::default()
    })
    .unwrap();
    let tpch = Bound::new(tpch_db, 0.05);
    for name in ["q3", "q5", "q9", "q21"] {
        let mut rng = derive_rng_indexed(0xbe2c, name, 0);
        let q = instantiate(&tpch.db, name, &mut rng).unwrap();
        queries.push(tpch.run_query("tpch", name, &q, reps));
    }

    let geomean_speedup =
        (queries.iter().map(|r| r.speedup.ln()).sum::<f64>() / queries.len() as f64).exp();
    let report = BenchReport {
        bench: "bench_incremental",
        quick,
        queries,
        geomean_speedup,
    };

    println!(
        "{:<24} {:>12} {:>12} {:>8}  {:>14} {:>12}",
        "query", "scratch ms", "incr ms", "speedup", "dp replanned", "cache hits"
    );
    for r in &report.queries {
        println!(
            "{:<24} {:>12.3} {:>12.3} {:>7.2}x  {:>6} -> {:>5} {:>12}",
            format!("{}/{}", r.workload, r.query),
            r.from_scratch.total_loop_ms,
            r.incremental.total_loop_ms,
            r.speedup,
            r.from_scratch.dp_subsets_replanned,
            r.incremental.dp_subsets_replanned,
            r.incremental.sample_cache_hits,
        );
    }
    println!("geomean speedup: {:.2}x", report.geomean_speedup);

    // Anchor the output at the workspace root (cargo runs benches with
    // cwd = the package directory) so CI finds one canonical path.
    let out = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(pkg) => std::path::Path::new(&pkg)
            .ancestors()
            .nth(2)
            .unwrap()
            .join("BENCH_incremental.json"),
        Err(_) => std::path::PathBuf::from("BENCH_incremental.json"),
    };
    let json = serde_json::to_string(&report).unwrap();
    std::fs::write(&out, &json).unwrap();
    println!("wrote {}", out.display());
}
