//! Cached-plan latency under churn: surgical drift reaction vs full
//! flush vs no eviction, with machine-readable output in
//! `BENCH_drift.json` and regression guardrails asserted in-process.
//!
//! Not a criterion harness: each regime drives a real [`QueryService`]
//! through the ingest API end to end. Pass `--quick` for the
//! reduced-iteration CI configuration.
//!
//! Scenario: a warm template workload — one template over the stormed
//! table, five over tables the storm never touches — while
//! `ott_lineitem` takes a skew storm (batches of one hot value). Three
//! services see the identical churn:
//!
//! * **surgical** (default `DriftConfig`) — measured drift crosses the
//!   threshold mid-storm; only the drifted table's samples are redrawn
//!   and only the plans touching it are marked. The untouched templates
//!   must keep serving warm straight through: the post-storm warm-hit
//!   rate is the headline number, and the guardrail demands it stay
//!   *strictly above* the full-flush regime's. The classic warm-latency
//!   guardrail binds here too: post-drift warm latency within
//!   `GUARDRAIL_WARM_RATIO`× the pre-drift warm mean.
//! * **full flush** — `auto_refresh: false` plus a manual
//!   [`QueryService::refresh_full`] once the storm ends: the old
//!   indiscriminate reaction. Every template pays re-optimization,
//!   drifted or not.
//! * **eviction off** (`auto_refresh: false`, nobody refreshes) — the
//!   baseline a static system degrades to: stale plans keep serving and
//!   nothing re-learns.
//!
//! The report also tracks ingest cost itself (incremental ANALYZE + drift
//! scoring per batch) so regressions in the ingest path are visible, and
//! the `refreshes` / `tables_refreshed` / eviction counters so a
//! silently-disabled drift monitor fails the guardrail instead of
//! shipping.

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use reopt_plan::query::ColRef;
use reopt_plan::{Predicate, Query, QueryBuilder};
use reopt_sampling::SampleConfig;
use reopt_service::{DriftConfig, PlanSource, QueryService, ServiceConfig};
use reopt_stats::AnalyzeOpts;
use reopt_storage::Value;
use reopt_workloads::ott::{
    build_ott_database, ott_query, recommended_sample_ratio, OttConfig, COL_A, COL_B,
    OTT_TABLE_NAMES,
};

/// Post-drift warm latency may be at most this multiple of the pre-drift
/// warm mean. Generous (warm hits are microseconds, so scheduler noise is
/// a real hazard) but far below the cold-miss cost the eviction path pays
/// — a service that re-optimizes on *every* submission blows through it.
const GUARDRAIL_WARM_RATIO: f64 = 25.0;

#[derive(Debug, Serialize)]
struct ChurnResult {
    ingests: usize,
    rows_ingested: usize,
    /// Mean / max wall time of one ingest call (mutate + incremental
    /// ANALYZE + drift scoring + possible refresh), milliseconds.
    mean_ingest_ms: f64,
    max_ingest_ms: f64,
    /// Refresh events on the surgical service (drift crossings).
    refreshes: u64,
    /// Per-table sample redraws across those refreshes — the whole point:
    /// one drifting table means this stays ≈ `refreshes`, not 6×.
    tables_refreshed: u64,
    /// Worst drift observed across the storm.
    max_drift: f64,
}

#[derive(Debug, Serialize)]
struct RegimeResult {
    /// First post-storm submission of each template: fraction answered
    /// straight from cache. The surgical regime keeps the untouched
    /// templates warm; a full flush drops everything to zero.
    warm_hit_rate: f64,
    /// Latency of that first post-storm pass over all templates (cold
    /// and warm alike), milliseconds.
    post_drift_probe_ms: f64,
    /// Warm-hit mean latency after the probe settled, milliseconds.
    post_drift_warm_ms: f64,
    /// Re-learn (non-warm) latencies paid in the probe — the price of
    /// the regime's eviction policy. Empty when nothing was evicted.
    post_drift_relearn_ms: Vec<f64>,
    stale_evictions: u64,
    table_evictions: u64,
    revalidations: u64,
    revalidations_saved: u64,
    reopts_run: u64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: &'static str,
    quick: bool,
    /// Warm-hit mean latency before any churn, milliseconds.
    pre_drift_warm_ms: f64,
    churn: ChurnResult,
    surgical: RegimeResult,
    full_flush: RegimeResult,
    eviction_off: RegimeResult,
    /// surgical.post_drift_warm_ms / pre_drift_warm_ms.
    warm_ratio: f64,
    warm_ratio_limit: f64,
}

fn fresh_service(config: &OttConfig, drift: DriftConfig) -> Arc<QueryService> {
    Arc::new(
        QueryService::from_database(
            Arc::new(build_ott_database(config).unwrap()),
            &AnalyzeOpts::default(),
            SampleConfig {
                ratio: recommended_sample_ratio(config),
                ..Default::default()
            },
            ServiceConfig {
                drift,
                ..Default::default()
            },
        )
        .unwrap(),
    )
}

/// A chain query over an arbitrary run of OTT tables (`ott_query` always
/// starts at `ott_lineitem`; the untouched templates must not).
fn chain_query(service: &QueryService, tables: &[usize], constant: i64) -> Query {
    let engine = service.engine();
    let db = engine.db();
    let mut qb = QueryBuilder::new();
    let mut rels = Vec::new();
    for &t in tables {
        let rel = qb.add_relation(db.table_by_name(OTT_TABLE_NAMES[t]).unwrap().id());
        qb.add_predicate(Predicate::eq(rel, COL_A, constant));
        rels.push(rel);
    }
    for w in rels.windows(2) {
        qb.add_join(ColRef::new(w[0], COL_B), ColRef::new(w[1], COL_B));
    }
    qb.build()
}

fn warm_mean_ms(service: &QueryService, queries: &[Query], iters: usize) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        let r = service.submit(&queries[i % queries.len()]).unwrap();
        debug_assert_eq!(r.source, PlanSource::WarmHit);
    }
    t0.elapsed().as_secs_f64() * 1e3 / iters as f64
}

/// One post-storm pass over every template: warm-hit rate, total probe
/// latency, and the individual re-learn (non-warm) latencies.
fn probe(service: &QueryService, queries: &[Query]) -> (f64, f64, Vec<f64>) {
    let t0 = Instant::now();
    let mut warm = 0usize;
    let mut relearn_ms = Vec::new();
    for q in queries {
        let r = service.submit(q).unwrap();
        if r.source == PlanSource::WarmHit {
            warm += 1;
        } else {
            relearn_ms.push(r.latency.as_secs_f64() * 1e3);
        }
    }
    let probe_ms = t0.elapsed().as_secs_f64() * 1e3;
    (warm as f64 / queries.len() as f64, probe_ms, relearn_ms)
}

fn regime(
    service: &QueryService,
    queries: &[Query],
    warm_iters: usize,
) -> (RegimeResult, f64, f64) {
    let (warm_hit_rate, probe_ms, relearn_ms) = probe(service, queries);
    let warm_ms = warm_mean_ms(service, queries, warm_iters);
    let stats = service.stats();
    (
        RegimeResult {
            warm_hit_rate,
            post_drift_probe_ms: probe_ms,
            post_drift_warm_ms: warm_ms,
            post_drift_relearn_ms: relearn_ms,
            stale_evictions: stats.stale_evictions,
            table_evictions: stats.table_evictions,
            revalidations: stats.revalidations,
            revalidations_saved: stats.revalidations_saved,
            reopts_run: stats.reopts_run,
        },
        warm_hit_rate,
        warm_ms,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let warm_iters = if quick { 200 } else { 2000 };
    let storm_batches = if quick { 6 } else { 12 };

    let ott_config = OttConfig {
        rows_per_value: 12,
        ..Default::default()
    };
    let lineitem_rows = ott_config.distinct_values[0] * ott_config.rows_per_value;
    // Each batch adds half of ott_lineitem's original size, all one value.
    let batch: Vec<Vec<Value>> = (0..lineitem_rows / 2)
        .map(|_| vec![Value::Int(0), Value::Int(0)])
        .collect();

    let svc_surgical = fresh_service(&ott_config, DriftConfig::default());
    let no_auto = DriftConfig {
        auto_refresh: false,
        ..Default::default()
    };
    let svc_full = fresh_service(&ott_config, no_auto.clone());
    let svc_off = fresh_service(&ott_config, no_auto);

    // Six distinct templates (a template is the query *structure*): one
    // over the storm target, five over tables the storm never touches.
    let mut queries: Vec<Query> = vec![ott_query(svc_surgical.engine().db(), &[0, 0, 1]).unwrap()];
    for tables in [
        &[1usize, 2] as &[usize],
        &[2, 3],
        &[3, 4],
        &[1, 2, 3],
        &[2, 3, 4],
    ] {
        queries.push(chain_query(&svc_surgical, tables, 0));
    }
    for q in &queries {
        assert_eq!(svc_surgical.submit(q).unwrap().source, PlanSource::ColdMiss);
        assert_eq!(svc_full.submit(q).unwrap().source, PlanSource::ColdMiss);
        assert_eq!(svc_off.submit(q).unwrap().source, PlanSource::ColdMiss);
    }
    let pre_drift_warm_ms = warm_mean_ms(&svc_surgical, &queries, warm_iters);

    // --- The skew storm, identical on all three services. ---
    let mut ingest_ms = Vec::with_capacity(storm_batches);
    let mut max_drift = 0f64;
    let mut rows_ingested = 0usize;
    for _ in 0..storm_batches {
        let t0 = Instant::now();
        let report = svc_surgical.append_rows("ott_lineitem", &batch).unwrap();
        ingest_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        max_drift = max_drift.max(report.drift);
        rows_ingested += report.rows_appended;
        svc_full.append_rows("ott_lineitem", &batch).unwrap();
        svc_off.append_rows("ott_lineitem", &batch).unwrap();
    }
    let snap = svc_surgical.telemetry_snapshot();
    let refreshes = snap.counter("ingest.refreshes");
    let tables_refreshed = snap.counter("ingest.tables_refreshed");
    assert!(
        refreshes >= 1,
        "the storm never crossed the drift threshold (max drift {max_drift})"
    );
    assert_eq!(
        tables_refreshed, refreshes,
        "a one-table storm must redraw exactly one table per refresh"
    );
    // The full-flush regime reacts once, indiscriminately, after the storm.
    svc_full.refresh_full().unwrap();
    let churn = ChurnResult {
        ingests: storm_batches,
        rows_ingested,
        mean_ingest_ms: ingest_ms.iter().sum::<f64>() / ingest_ms.len() as f64,
        max_ingest_ms: ingest_ms.iter().fold(0f64, |a, &b| a.max(b)),
        refreshes,
        tables_refreshed,
        max_drift,
    };

    // --- Post-drift probes: one pass over every template per regime. ---
    let (surgical, surgical_rate, surgical_warm_ms) = regime(&svc_surgical, &queries, warm_iters);
    assert!(
        !surgical.post_drift_relearn_ms.is_empty(),
        "the surgical refresh evicted nothing"
    );
    let (full_flush, full_rate, _) = regime(&svc_full, &queries, warm_iters);
    let (eviction_off, _, _) = regime(&svc_off, &queries, warm_iters);
    assert_eq!(
        eviction_off.stale_evictions + eviction_off.table_evictions,
        0,
        "auto_refresh=false must not evict"
    );

    let warm_ratio = surgical_warm_ms / pre_drift_warm_ms.max(1e-9);
    let report = BenchReport {
        bench: "bench_drift",
        quick,
        pre_drift_warm_ms,
        churn,
        surgical,
        full_flush,
        eviction_off,
        warm_ratio,
        warm_ratio_limit: GUARDRAIL_WARM_RATIO,
    };

    println!(
        "pre-drift warm {:.1} µs | storm: {} ingests, {} rows, {} refreshes ({} tables redrawn), max drift {:.3}, mean ingest {:.3} ms",
        report.pre_drift_warm_ms * 1e3,
        report.churn.ingests,
        report.churn.rows_ingested,
        report.churn.refreshes,
        report.churn.tables_refreshed,
        report.churn.max_drift,
        report.churn.mean_ingest_ms,
    );
    println!(
        "surgical:    warm-hit rate {:.2}, probe {:.2} ms, post-drift warm {:.1} µs (ratio {:.2}, limit {}), {} re-learns, {} table evictions, {} revalidations ({} saved)",
        report.surgical.warm_hit_rate,
        report.surgical.post_drift_probe_ms,
        report.surgical.post_drift_warm_ms * 1e3,
        report.warm_ratio,
        report.warm_ratio_limit,
        report.surgical.post_drift_relearn_ms.len(),
        report.surgical.table_evictions,
        report.surgical.revalidations,
        report.surgical.revalidations_saved,
    );
    println!(
        "full flush:  warm-hit rate {:.2}, probe {:.2} ms, post-drift warm {:.1} µs, {} re-learns, {} stale evictions",
        report.full_flush.warm_hit_rate,
        report.full_flush.post_drift_probe_ms,
        report.full_flush.post_drift_warm_ms * 1e3,
        report.full_flush.post_drift_relearn_ms.len(),
        report.full_flush.stale_evictions,
    );
    println!(
        "eviction off: warm-hit rate {:.2}, post-drift warm {:.1} µs (stale plans kept serving)",
        report.eviction_off.warm_hit_rate,
        report.eviction_off.post_drift_warm_ms * 1e3,
    );

    // Guardrail 1: the surgical reaction must keep strictly more of the
    // cache warm than the indiscriminate flush — that is its whole claim.
    assert!(
        surgical_rate > full_rate,
        "surgical warm-hit rate {surgical_rate:.2} must be strictly above full-flush {full_rate:.2}"
    );
    // Guardrail 2: eviction must restore the warm steady state, not
    // replace it with repeated re-optimization.
    assert!(
        report.warm_ratio <= GUARDRAIL_WARM_RATIO,
        "post-drift warm latency regressed: {:.1} µs vs pre-drift {:.1} µs (ratio {:.2} > {})",
        report.surgical.post_drift_warm_ms * 1e3,
        report.pre_drift_warm_ms * 1e3,
        report.warm_ratio,
        GUARDRAIL_WARM_RATIO,
    );

    // Anchor the output at the workspace root (cargo runs benches with
    // cwd = the package directory) so CI finds one canonical path.
    let out = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(pkg) => std::path::Path::new(&pkg)
            .ancestors()
            .nth(2)
            .unwrap()
            .join("BENCH_drift.json"),
        Err(_) => std::path::PathBuf::from("BENCH_drift.json"),
    };
    let json = serde_json::to_string(&report).unwrap();
    std::fs::write(&out, &json).unwrap();
    println!("wrote {}", out.display());
}
