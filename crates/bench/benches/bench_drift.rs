//! Cached-plan latency under churn: drift-triggered eviction on vs off,
//! with machine-readable output in `BENCH_drift.json` and a regression
//! guardrail asserted in-process.
//!
//! Not a criterion harness: each regime drives a real [`QueryService`]
//! through the ingest API end to end. Pass `--quick` for the
//! reduced-iteration CI configuration.
//!
//! Scenario: a warm template workload over the OTT database while
//! `ott_lineitem` takes a skew storm (batches of one hot value). Two
//! services see the identical churn:
//!
//! * **eviction on** (default `DriftConfig`) — measured drift crosses the
//!   threshold mid-storm, samples are redrawn, stale plans evicted, and
//!   the template re-optimizes once against post-drift data. The
//!   guardrail binds here: post-drift *warm* latency must stay within
//!   `GUARDRAIL_WARM_RATIO`× the pre-drift warm mean — eviction may cost
//!   one cold miss, not a permanently slower steady state.
//! * **eviction off** (`auto_refresh: false`) — the baseline a static
//!   system degrades to: stale plans keep serving and nothing re-learns.
//!
//! The report also tracks ingest cost itself (incremental ANALYZE + drift
//! scoring per batch) so regressions in the ingest path are visible, and
//! `refreshes`/`stale_evictions` counters so a silently-disabled drift
//! monitor fails the guardrail instead of shipping.

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use reopt_sampling::SampleConfig;
use reopt_service::{DriftConfig, PlanSource, QueryService, ServiceConfig};
use reopt_stats::AnalyzeOpts;
use reopt_storage::Value;
use reopt_workloads::ott::{build_ott_database, ott_query, recommended_sample_ratio, OttConfig};

/// Post-drift warm latency may be at most this multiple of the pre-drift
/// warm mean. Generous (warm hits are microseconds, so scheduler noise is
/// a real hazard) but far below the cold-miss cost the eviction path pays
/// — a service that re-optimizes on *every* submission blows through it.
const GUARDRAIL_WARM_RATIO: f64 = 25.0;

#[derive(Debug, Serialize)]
struct ChurnResult {
    ingests: usize,
    rows_ingested: usize,
    /// Mean / max wall time of one ingest call (mutate + incremental
    /// ANALYZE + drift scoring + possible refresh), milliseconds.
    mean_ingest_ms: f64,
    max_ingest_ms: f64,
    /// Sample rebuild + engine swap events (drift crossings).
    refreshes: u64,
    /// Worst drift observed across the storm.
    max_drift: f64,
}

#[derive(Debug, Serialize)]
struct RegimeResult {
    /// Warm-hit mean latency after the storm settled, milliseconds.
    post_drift_warm_ms: f64,
    /// Cold (re-optimization) latencies paid after the storm — the price
    /// of eviction. Empty when nothing was evicted.
    post_drift_cold_ms: Vec<f64>,
    stale_evictions: u64,
    reopts_run: u64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: &'static str,
    quick: bool,
    /// Warm-hit mean latency before any churn, milliseconds.
    pre_drift_warm_ms: f64,
    churn: ChurnResult,
    eviction_on: RegimeResult,
    eviction_off: RegimeResult,
    /// post_drift_warm_ms (eviction on) / pre_drift_warm_ms.
    warm_ratio: f64,
    warm_ratio_limit: f64,
}

fn fresh_service(config: &OttConfig, drift: DriftConfig) -> Arc<QueryService> {
    Arc::new(
        QueryService::from_database(
            Arc::new(build_ott_database(config).unwrap()),
            &AnalyzeOpts::default(),
            SampleConfig {
                ratio: recommended_sample_ratio(config),
                ..Default::default()
            },
            ServiceConfig {
                drift,
                ..Default::default()
            },
        )
        .unwrap(),
    )
}

fn warm_mean_ms(service: &QueryService, queries: &[reopt_plan::Query], iters: usize) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        let r = service.submit(&queries[i % queries.len()]).unwrap();
        debug_assert_eq!(r.source, PlanSource::WarmHit);
    }
    t0.elapsed().as_secs_f64() * 1e3 / iters as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let warm_iters = if quick { 200 } else { 2000 };
    let storm_batches = if quick { 6 } else { 12 };

    let ott_config = OttConfig {
        rows_per_value: 12,
        ..Default::default()
    };
    let lineitem_rows = ott_config.distinct_values[0] * ott_config.rows_per_value;
    // Each batch adds half of ott_lineitem's original size, all one value.
    let batch: Vec<Vec<Value>> = (0..lineitem_rows / 2)
        .map(|_| vec![Value::Int(0), Value::Int(0)])
        .collect();

    let svc_on = fresh_service(&ott_config, DriftConfig::default());
    let svc_off = fresh_service(
        &ott_config,
        DriftConfig {
            auto_refresh: false,
            ..Default::default()
        },
    );

    // Warm both services on three distinct templates (a template is the
    // query *structure*, so distinct chain lengths, not distinct literals).
    let consts: [&[i64]; 3] = [&[0, 0, 1], &[0, 0, 0, 1], &[0, 0, 0, 0, 1]];
    let queries: Vec<_> = {
        let engine = svc_on.engine();
        consts
            .iter()
            .map(|c| ott_query(engine.db(), c).unwrap())
            .collect()
    };
    for q in &queries {
        assert_eq!(svc_on.submit(q).unwrap().source, PlanSource::ColdMiss);
        assert_eq!(svc_off.submit(q).unwrap().source, PlanSource::ColdMiss);
    }
    let pre_drift_warm_ms = warm_mean_ms(&svc_on, &queries, warm_iters);

    // --- The skew storm, identical on both services. ---
    let mut ingest_ms = Vec::with_capacity(storm_batches);
    let mut max_drift = 0f64;
    let mut rows_ingested = 0usize;
    for _ in 0..storm_batches {
        let t0 = Instant::now();
        let report = svc_on.append_rows("ott_lineitem", &batch).unwrap();
        ingest_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        max_drift = max_drift.max(report.drift);
        rows_ingested += report.rows_appended;
        svc_off.append_rows("ott_lineitem", &batch).unwrap();
    }
    let refreshes = svc_on.telemetry_snapshot().counter("ingest.refreshes");
    assert!(
        refreshes >= 1,
        "the storm never crossed the drift threshold (max drift {max_drift})"
    );
    let churn = ChurnResult {
        ingests: storm_batches,
        rows_ingested,
        mean_ingest_ms: ingest_ms.iter().sum::<f64>() / ingest_ms.len() as f64,
        max_ingest_ms: ingest_ms.iter().fold(0f64, |a, &b| a.max(b)),
        refreshes,
        max_drift,
    };

    // --- Post-drift: eviction on pays cold misses, then is warm again. ---
    let mut post_drift_cold_ms = Vec::new();
    for q in &queries {
        let r = svc_on.submit(q).unwrap();
        if r.source == PlanSource::ColdMiss {
            post_drift_cold_ms.push(r.latency.as_secs_f64() * 1e3);
        }
    }
    assert!(
        !post_drift_cold_ms.is_empty(),
        "drift refresh evicted nothing"
    );
    let on_warm = warm_mean_ms(&svc_on, &queries, warm_iters);
    let on_stats = svc_on.stats();
    let eviction_on = RegimeResult {
        post_drift_warm_ms: on_warm,
        post_drift_cold_ms,
        stale_evictions: on_stats.stale_evictions,
        reopts_run: on_stats.reopts_run,
    };

    // --- Eviction off: stale plans keep serving, nothing re-learns. ---
    let off_warm = warm_mean_ms(&svc_off, &queries, warm_iters);
    let off_stats = svc_off.stats();
    assert_eq!(
        off_stats.stale_evictions, 0,
        "auto_refresh=false must not evict"
    );
    let eviction_off = RegimeResult {
        post_drift_warm_ms: off_warm,
        post_drift_cold_ms: Vec::new(),
        stale_evictions: off_stats.stale_evictions,
        reopts_run: off_stats.reopts_run,
    };

    let warm_ratio = eviction_on.post_drift_warm_ms / pre_drift_warm_ms.max(1e-9);
    let report = BenchReport {
        bench: "bench_drift",
        quick,
        pre_drift_warm_ms,
        churn,
        eviction_on,
        eviction_off,
        warm_ratio,
        warm_ratio_limit: GUARDRAIL_WARM_RATIO,
    };

    println!(
        "pre-drift warm {:.1} µs | storm: {} ingests, {} rows, {} refreshes, max drift {:.3}, mean ingest {:.3} ms",
        report.pre_drift_warm_ms * 1e3,
        report.churn.ingests,
        report.churn.rows_ingested,
        report.churn.refreshes,
        report.churn.max_drift,
        report.churn.mean_ingest_ms,
    );
    println!(
        "eviction on:  post-drift warm {:.1} µs (ratio {:.2}, limit {}), {} cold misses paid, {} stale evictions",
        report.eviction_on.post_drift_warm_ms * 1e3,
        report.warm_ratio,
        report.warm_ratio_limit,
        report.eviction_on.post_drift_cold_ms.len(),
        report.eviction_on.stale_evictions,
    );
    println!(
        "eviction off: post-drift warm {:.1} µs, {} stale evictions (stale plans kept serving)",
        report.eviction_off.post_drift_warm_ms * 1e3,
        report.eviction_off.stale_evictions,
    );

    // The regression guardrail: eviction must restore the warm steady
    // state, not replace it with repeated re-optimization.
    assert!(
        report.warm_ratio <= GUARDRAIL_WARM_RATIO,
        "post-drift warm latency regressed: {:.1} µs vs pre-drift {:.1} µs (ratio {:.2} > {})",
        report.eviction_on.post_drift_warm_ms * 1e3,
        report.pre_drift_warm_ms * 1e3,
        report.warm_ratio,
        GUARDRAIL_WARM_RATIO,
    );

    // Anchor the output at the workspace root (cargo runs benches with
    // cwd = the package directory) so CI finds one canonical path.
    let out = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(pkg) => std::path::Path::new(&pkg)
            .ancestors()
            .nth(2)
            .unwrap()
            .join("BENCH_drift.json"),
        Err(_) => std::path::PathBuf::from("BENCH_drift.json"),
    };
    let json = serde_json::to_string(&report).unwrap();
    std::fs::write(&out, &json).unwrap();
    println!("wrote {}", out.display());
}
