//! Shared experiment-runner plumbing for the figure harnesses.

use std::time::Instant;

use reopt_common::Result;
use reopt_core::{ReOptConfig, ReOptimizer, ReoptReport};
use reopt_executor::{ExecOpts, Executor};
use reopt_optimizer::{Optimizer, OptimizerConfig};
use reopt_plan::{PhysicalPlan, Query};
use reopt_sampling::{SampleConfig, SampleStore};
use reopt_stats::{analyze_database, AnalyzeOpts, DatabaseStats};
use reopt_storage::Database;

/// Configuration for a [`Runner`].
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Sampling ratio (paper: 0.05).
    pub sample_ratio: f64,
    /// Seed for sampling.
    pub seed: u64,
    /// Re-optimization loop settings.
    pub reopt: ReOptConfig,
    /// Execution guard for measured runs.
    pub max_intermediate_rows: u64,
    /// Also execute every distinct intermediate plan on the full database
    /// (Figures 14–15). Off by default: intermediate plans can be the
    /// pathological ones.
    pub measure_rounds: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            sample_ratio: 0.05,
            seed: 0xbe7c,
            reopt: ReOptConfig::default(),
            max_intermediate_rows: 100_000_000,
            measure_rounds: false,
        }
    }
}

/// Measurements for one query instance.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// Wall time of the optimizer's original plan (round 1), milliseconds.
    pub original_ms: f64,
    /// Wall time of the re-optimized (final) plan, milliseconds.
    pub reopt_ms: f64,
    /// Time spent inside the re-optimization loop, milliseconds.
    pub reopt_overhead_ms: f64,
    /// Optimizer invocations.
    pub rounds: usize,
    /// Distinct plans generated (the paper's Figures 5/8/16/20 metric).
    pub distinct_plans: usize,
    /// Did the final plan differ from the original?
    pub plan_changed: bool,
    /// Join-result cardinality (sanity/diagnostics).
    pub join_rows: u64,
    /// Execution time of each distinct plan, in generation order
    /// (only when `measure_rounds` is set; `None` = exceeded the guard).
    pub per_plan_ms: Vec<Option<f64>>,
    /// The full loop trace.
    pub report: ReoptReport,
}

/// An experiment runner bound to one database + optimizer configuration.
pub struct Runner<'a> {
    db: &'a Database,
    stats: DatabaseStats,
    samples: SampleStore,
    opt_config: OptimizerConfig,
    config: RunnerConfig,
}

impl<'a> Runner<'a> {
    /// Analyze and sample `db`, binding the given optimizer configuration.
    pub fn new(
        db: &'a Database,
        opt_config: OptimizerConfig,
        config: RunnerConfig,
    ) -> Result<Self> {
        let stats = analyze_database(db, &AnalyzeOpts::default())?;
        let samples = SampleStore::build(
            db,
            SampleConfig {
                ratio: config.sample_ratio,
                seed: config.seed,
                ..Default::default()
            },
        )?;
        Ok(Runner {
            db,
            stats,
            samples,
            opt_config,
            config,
        })
    }

    /// Swap in a different optimizer configuration (e.g. calibrated cost
    /// units) while reusing the stats and samples.
    pub fn with_optimizer_config(&self, opt_config: OptimizerConfig) -> Runner<'a> {
        Runner {
            db: self.db,
            stats: self.stats.clone(),
            samples: self.samples.clone(),
            opt_config,
            config: self.config.clone(),
        }
    }

    /// The bound database.
    pub fn database(&self) -> &'a Database {
        self.db
    }

    /// Time one plan on the full database; `None` if it blows the guard.
    pub fn time_plan(&self, query: &Query, plan: &PhysicalPlan) -> Option<(f64, u64)> {
        let exec = Executor::with_opts(
            self.db,
            ExecOpts {
                max_intermediate_rows: self.config.max_intermediate_rows,
                ..Default::default()
            },
        );
        let t = Instant::now();
        match exec.run(query, plan) {
            Ok(out) => Some((t.elapsed().as_secs_f64() * 1e3, out.join_rows)),
            Err(_) => None,
        }
    }

    /// Run the full pipeline on one query: re-optimize, then execute the
    /// original and final plans on the full database.
    pub fn run_query(&self, query: &Query) -> Result<QueryRun> {
        let optimizer = Optimizer::with_config(self.db, &self.stats, self.opt_config.clone());
        let reopt = ReOptimizer::with_config(&optimizer, &self.samples, self.config.reopt.clone());
        let report = reopt.run(query)?;

        let original_plan = &report.rounds[0].plan;
        let (original_ms, _) = self
            .time_plan(query, original_plan)
            .unwrap_or((f64::INFINITY, 0));
        let (reopt_ms, join_rows) = self
            .time_plan(query, &report.final_plan)
            .unwrap_or((f64::INFINITY, 0));

        let per_plan_ms = if self.config.measure_rounds {
            report
                .distinct_plans()
                .iter()
                .map(|p| self.time_plan(query, p).map(|(ms, _)| ms))
                .collect()
        } else {
            Vec::new()
        };

        Ok(QueryRun {
            original_ms,
            reopt_ms,
            reopt_overhead_ms: report.reopt_time.as_secs_f64() * 1e3,
            rounds: report.num_rounds(),
            distinct_plans: report.num_distinct_plans(),
            plan_changed: report.plan_changed(),
            join_rows,
            per_plan_ms,
            report,
        })
    }
}

/// Minimal aligned-text table for harness output.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn push(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format milliseconds compactly.
pub fn fmt_ms(ms: f64) -> String {
    if !ms.is_finite() {
        ">guard".to_string()
    } else if ms >= 1000.0 {
        format!("{:.2}s", ms / 1000.0)
    } else if ms >= 1.0 {
        format!("{ms:.1}ms")
    } else {
        format!("{:.0}us", ms * 1000.0)
    }
}

/// True when `--quick` was passed (reduced instance counts).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_aligns_columns() {
        let mut t = TextTable::new("demo", &["name", "value"]);
        t.push(vec!["a".into(), "1".into()]);
        t.push(vec!["longer-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows.
        assert_eq!(lines.len(), 5);
        // Column start positions align.
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find('1').unwrap(), col);
        assert_eq!(lines[4].find("22").unwrap(), col);
    }

    #[test]
    fn fmt_ms_ranges() {
        assert_eq!(fmt_ms(0.0005), "0us"); // rounds down below 1us
        assert_eq!(fmt_ms(0.5), "500us");
        assert_eq!(fmt_ms(5.25), "5.2ms");
        assert_eq!(fmt_ms(1500.0), "1.50s");
        assert_eq!(fmt_ms(f64::INFINITY), ">guard");
    }

    #[test]
    fn runner_config_defaults_follow_paper() {
        let c = RunnerConfig::default();
        assert!((c.sample_ratio - 0.05).abs() < 1e-12);
        assert!(!c.measure_rounds);
    }
}
