//! Run every figure harness in sequence (pass --quick for a fast pass).
fn main() {
    let quick = reopt_bench::quick_mode();
    println!("reproducing all figures (quick = {quick})\n");
    for t in reopt_bench::experiments::theory::run(quick) {
        println!("{t}");
    }
    for t in reopt_bench::experiments::tpch::run(0.0, quick).expect("fig 4-6") {
        println!("{t}");
    }
    for t in reopt_bench::experiments::tpch::run(1.0, quick).expect("fig 7-9") {
        println!("{t}");
    }
    for t in reopt_bench::experiments::ott::run(quick).expect("fig 10/11/16/17/18") {
        println!("{t}");
    }
    for t in reopt_bench::experiments::commercial::run(quick).expect("fig 12-13") {
        println!("{t}");
    }
    for t in reopt_bench::experiments::rounds::run(quick).expect("fig 14-15") {
        println!("{t}");
    }
    for t in reopt_bench::experiments::tpcds::run(quick).expect("fig 19-20") {
        println!("{t}");
    }
    for t in reopt_bench::experiments::ablations::run(quick).expect("ablations") {
        println!("{t}");
    }
}
