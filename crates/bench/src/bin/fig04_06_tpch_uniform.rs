//! Figures 4, 5, 6: TPC-H-like, uniform database (z = 0).
fn main() {
    let quick = reopt_bench::quick_mode();
    for t in reopt_bench::experiments::tpch::run(0.0, quick).expect("tpch uniform experiment") {
        println!("{t}");
    }
}
