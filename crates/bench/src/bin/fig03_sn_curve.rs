//! Figure 3 + Appendix B harness.
fn main() {
    let quick = reopt_bench::quick_mode();
    for t in reopt_bench::experiments::theory::run(quick) {
        println!("{t}");
    }
}
