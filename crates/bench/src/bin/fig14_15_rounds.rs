//! Figures 14, 15: per-round plan runtimes during re-optimization.
fn main() {
    let quick = reopt_bench::quick_mode();
    for t in reopt_bench::experiments::rounds::run(quick).expect("rounds experiment") {
        println!("{t}");
    }
}
