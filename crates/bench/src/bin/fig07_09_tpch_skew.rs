//! Figures 7, 8, 9: TPC-H-like, skewed database (z = 1).
fn main() {
    let quick = reopt_bench::quick_mode();
    for t in reopt_bench::experiments::tpch::run(1.0, quick).expect("tpch skew experiment") {
        println!("{t}");
    }
}
