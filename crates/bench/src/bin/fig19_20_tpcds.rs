//! Figures 19, 20: TPC-DS-like workload.
fn main() {
    let quick = reopt_bench::quick_mode();
    for t in reopt_bench::experiments::tpcds::run(quick).expect("tpcds experiment") {
        println!("{t}");
    }
}
