//! §5.1.2 — cost-unit calibration report.
use reopt_optimizer::calibrate;

fn main() {
    let r = calibrate(7, 1);
    println!("== Cost-unit calibration (paper §5.1.2) ==");
    println!("raw timings (ns): seq_page={:.1} random_page={:.1} cpu_tuple={:.2} cpu_index_tuple={:.2} cpu_operator={:.3}",
        r.seq_page_ns, r.random_page_ns, r.cpu_tuple_ns, r.cpu_index_tuple_ns, r.cpu_operator_ns);
    let u = r.units;
    println!("calibrated units (seq_page = 1.0):");
    println!(
        "  random_page_cost     = {:.3}  (PostgreSQL default 4.0)",
        u.random_page_cost
    );
    println!(
        "  cpu_tuple_cost       = {:.5}  (default 0.01)",
        u.cpu_tuple_cost
    );
    println!(
        "  cpu_index_tuple_cost = {:.5}  (default 0.005)",
        u.cpu_index_tuple_cost
    );
    println!(
        "  cpu_operator_cost    = {:.5}  (default 0.0025)",
        u.cpu_operator_cost
    );
}
