//! Figures 10, 11, 16, 17, 18: the Optimizer Torture Test.
fn main() {
    let quick = reopt_bench::quick_mode();
    for t in reopt_bench::experiments::ott::run(quick).expect("ott experiment") {
        println!("{t}");
    }
}
