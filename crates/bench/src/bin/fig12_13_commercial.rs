//! Figures 12, 13: OTT under the "commercial A/B" optimizer profiles.
fn main() {
    let quick = reopt_bench::quick_mode();
    for t in reopt_bench::experiments::commercial::run(quick).expect("commercial experiment") {
        println!("{t}");
    }
}
