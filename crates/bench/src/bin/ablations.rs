//! Design-choice ablations (sampling ratio, search space, leaf validation).
fn main() {
    let quick = reopt_bench::quick_mode();
    for t in reopt_bench::experiments::ablations::run(quick).expect("ablations") {
        println!("{t}");
    }
}
