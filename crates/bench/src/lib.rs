//! Benchmark and figure-reproduction harness.
//!
//! Two kinds of artifacts live here:
//!
//! * **Figure harnesses** (`src/bin/fig*.rs`) — one binary per figure (or
//!   figure group) of the paper. Each prints the same rows/series the
//!   paper reports, with paper-vs-measured columns where applicable.
//!   Run them with `cargo run --release -p reopt-bench --bin <name>`;
//!   `reproduce_all` chains every harness.
//! * **Criterion micro-benches** (`benches/`) — operator, optimizer, and
//!   re-optimization-loop benchmarks exercised by `cargo bench`.
//!
//! The [`harness`] module holds the shared experiment-runner plumbing:
//! building databases once per process, timing plans through the
//! re-optimization loop, and rendering aligned text tables.

pub mod experiments;
pub mod harness;

pub use harness::{fmt_ms, quick_mode, QueryRun, Runner, RunnerConfig, TextTable};
