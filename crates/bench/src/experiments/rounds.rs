//! Figures 14–15: execution time of every intermediate plan generated
//! during re-optimization (§5.4, "Effectiveness of Iteration").
//!
//! The paper's observations to reproduce: the second plan often already
//! captures most of the win, but not always — intermediate plans can be
//! *worse* than the original (their TPC-H Q21), because mid-loop plans are
//! chosen under partially validated statistics; only convergence gives the
//! local-optimality guarantee.

use crate::harness::{fmt_ms, Runner, RunnerConfig, TextTable};
use reopt_common::rng::derive_rng_indexed;
use reopt_common::Result;
use reopt_optimizer::OptimizerConfig;
use reopt_workloads::ott::{
    build_ott_database, ott_query, ott_query_suite, recommended_sample_ratio, OttConfig,
};
use reopt_workloads::tpch::{build_tpch_database, instantiate, TpchConfig};

fn rounds_config() -> RunnerConfig {
    RunnerConfig {
        measure_rounds: true,
        ..Default::default()
    }
}

/// The Figures 14–15 experiment.
pub fn run(quick: bool) -> Result<Vec<TextTable>> {
    let mut tables = Vec::new();

    // --- Figure 14: hard TPC-H-like templates, per-round runtimes.
    {
        let db = build_tpch_database(&TpchConfig {
            scale: if quick { 0.005 } else { 0.02 },
            ..Default::default()
        })?;
        let runner = Runner::new(&db, OptimizerConfig::postgres_like(), rounds_config())?;
        let mut t = TextTable::new(
            "Figure 14 — runtime of each plan generated during re-optimization (TPC-H-like hard queries; paper: Q8/Q9/Q21, intermediate plans may regress before converging)",
            &["query", "plan#1 (original)", "plan#2", "plan#3", "plan#4", "final"],
        );
        for name in ["q8", "q9", "q21"] {
            let mut rng = derive_rng_indexed(0x41, name, 0);
            let q = instantiate(&db, name, &mut rng)?;
            let run = runner.run_query(&q)?;
            t.push(per_round_row(name, &run.per_plan_ms, run.reopt_ms));
        }
        tables.push(t);
    }

    // --- Figure 15: OTT queries with ≥ 2 plans, per-round runtimes.
    {
        let config = OttConfig {
            rows_per_value: if quick { 10 } else { 20 },
            ..Default::default()
        };
        let db = build_ott_database(&config)?;
        let runner_config = RunnerConfig {
            sample_ratio: recommended_sample_ratio(&config),
            ..rounds_config()
        };
        let runner = Runner::new(&db, OptimizerConfig::postgres_like(), runner_config)?;
        for (n, label) in [(5usize, "(a) 4-join"), (6, "(b) 5-join")] {
            let mut t = TextTable::new(
                format!("Figure 15{label} — per-round plan runtimes, OTT"),
                &[
                    "query",
                    "plan#1 (original)",
                    "plan#2",
                    "plan#3",
                    "plan#4",
                    "final",
                ],
            );
            let mut shown = 0;
            for (i, consts) in ott_query_suite(n, 4).into_iter().enumerate() {
                let q = ott_query(&db, &consts)?;
                let run = runner.run_query(&q)?;
                if run.distinct_plans >= 2 {
                    t.push(per_round_row(
                        &format!("#{}", i + 1),
                        &run.per_plan_ms,
                        run.reopt_ms,
                    ));
                    shown += 1;
                }
                if shown >= 3 {
                    break; // the paper charts three representatives
                }
            }
            tables.push(t);
        }
    }
    Ok(tables)
}

fn per_round_row(name: &str, per_plan_ms: &[Option<f64>], final_ms: f64) -> Vec<String> {
    let mut cells = vec![name.to_string()];
    for i in 0..4 {
        cells.push(match per_plan_ms.get(i) {
            Some(Some(ms)) => fmt_ms(*ms),
            Some(None) => ">guard".into(),
            None => "-".into(),
        });
    }
    cells.push(fmt_ms(final_ms));
    cells
}
