//! Ablations over the design choices DESIGN.md §5 calls out:
//!
//! 1. **Sampling ratio** — the paper fixes 5%; sweeping it on the OTT
//!    shows the failure mode of under-sampling (empty and non-empty joins
//!    become indistinguishable at tiny effective sample sizes) and the
//!    diminishing returns of over-sampling.
//! 2. **Left-deep vs bushy search** — how much the search-space choice
//!    (footnote 2 of the paper) matters for plan quality here.
//! 3. **Leaf validation** — the paper validates join predicates only
//!    (§2); this toggle additionally validates base-selection
//!    cardinalities, which repairs correlated *local* conjunctions at the
//!    leaves.

use crate::harness::{fmt_ms, Runner, RunnerConfig, TextTable};
use reopt_common::rng::derive_rng_indexed;
use reopt_common::Result;
use reopt_core::ReOptConfig;
use reopt_optimizer::OptimizerConfig;
use reopt_sampling::ValidationOpts;
use reopt_workloads::ott::{build_ott_database, ott_query, ott_query_suite, OttConfig};
use reopt_workloads::tpch::{
    all_template_names, build_tpch_database, instantiate, is_hard_template, TpchConfig,
};

/// Sweep the sampling ratio on the OTT 4-join suite.
fn sampling_ratio_sweep(quick: bool) -> Result<TextTable> {
    let config = OttConfig {
        rows_per_value: if quick { 10 } else { 20 },
        ..Default::default()
    };
    let db = build_ott_database(&config)?;
    let mut t = TextTable::new(
        "Ablation 1 — sampling ratio vs OTT repair quality (paper fixes 5% at ~100 rows/value; the effective statistic is sampled rows per value group)",
        &["ratio", "rows/group", "queries fixed", "worst final", "mean overhead"],
    );
    for ratio in [0.01f64, 0.05, 0.1, 0.25, 0.5] {
        let runner = Runner::new(
            &db,
            OptimizerConfig::postgres_like(),
            RunnerConfig {
                sample_ratio: ratio,
                ..Default::default()
            },
        )?;
        let mut fixed = 0usize;
        let mut total = 0usize;
        let mut worst_final: f64 = 0.0;
        let mut overhead = 0.0;
        for consts in ott_query_suite(5, 4) {
            let q = ott_query(&db, &consts)?;
            let run = runner.run_query(&q)?;
            total += 1;
            // "Fixed" = final plan at least 5× faster than the original or
            // already trivially fast.
            if run.reopt_ms * 5.0 <= run.original_ms || run.original_ms < 0.05 {
                fixed += 1;
            }
            worst_final = worst_final.max(run.reopt_ms);
            overhead += run.reopt_overhead_ms;
        }
        t.push(vec![
            format!("{ratio:.2}"),
            format!("{:.1}", ratio * config.rows_per_value as f64),
            format!("{fixed}/{total}"),
            fmt_ms(worst_final),
            fmt_ms(overhead / total as f64),
        ]);
    }
    Ok(t)
}

/// Left-deep vs bushy search on the TPC-H templates.
fn search_space_ablation(quick: bool) -> Result<TextTable> {
    let db = build_tpch_database(&TpchConfig {
        scale: if quick { 0.005 } else { 0.02 },
        ..Default::default()
    })?;
    let bushy = Runner::new(
        &db,
        OptimizerConfig::postgres_like(),
        RunnerConfig::default(),
    )?;
    let left_deep = bushy.with_optimizer_config(OptimizerConfig {
        left_deep_only: true,
        ..OptimizerConfig::postgres_like()
    });
    let mut t = TextTable::new(
        "Ablation 2 — bushy vs left-deep-only search (re-optimized runtimes)",
        &["query", "bushy", "left-deep", "plans differ"],
    );
    for name in all_template_names() {
        let mut rng = derive_rng_indexed(0xab1, name, 0);
        let q = instantiate(&db, name, &mut rng)?;
        let b = bushy.run_query(&q)?;
        let mut rng = derive_rng_indexed(0xab1, name, 0);
        let q2 = instantiate(&db, name, &mut rng)?;
        let l = left_deep.run_query(&q2)?;
        let differ = !b.report.final_plan.same_structure(&l.report.final_plan);
        t.push(vec![
            name.to_string(),
            fmt_ms(b.reopt_ms),
            fmt_ms(l.reopt_ms),
            if differ { "yes".into() } else { "".into() },
        ]);
    }
    Ok(t)
}

/// Leaf validation on/off for the hard TPC-H templates.
fn leaf_validation_ablation(quick: bool) -> Result<TextTable> {
    let db = build_tpch_database(&TpchConfig {
        scale: if quick { 0.005 } else { 0.02 },
        ..Default::default()
    })?;
    let joins_only = Runner::new(
        &db,
        OptimizerConfig::postgres_like(),
        RunnerConfig::default(),
    )?;
    let with_leaves = Runner::new(
        &db,
        OptimizerConfig::postgres_like(),
        RunnerConfig {
            reopt: ReOptConfig {
                validation: ValidationOpts {
                    validate_leaves: true,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        },
    )?;
    let mut t = TextTable::new(
        "Ablation 3 — validating joins only (paper §2) vs joins+leaf selections",
        &[
            "query",
            "rounds (joins)",
            "rounds (+leaves)",
            "reopt (joins)",
            "reopt (+leaves)",
        ],
    );
    for name in all_template_names().iter().filter(|n| is_hard_template(n)) {
        let mut rng = derive_rng_indexed(0xab2, name, 0);
        let q = instantiate(&db, name, &mut rng)?;
        let a = joins_only.run_query(&q)?;
        let mut rng = derive_rng_indexed(0xab2, name, 0);
        let q2 = instantiate(&db, name, &mut rng)?;
        let b = with_leaves.run_query(&q2)?;
        t.push(vec![
            name.to_string(),
            a.rounds.to_string(),
            b.rounds.to_string(),
            fmt_ms(a.reopt_ms),
            fmt_ms(b.reopt_ms),
        ]);
    }
    Ok(t)
}

/// Run all ablations.
pub fn run(quick: bool) -> Result<Vec<TextTable>> {
    Ok(vec![
        sampling_ratio_sweep(quick)?,
        search_space_ablation(quick)?,
        leaf_validation_ablation(quick)?,
    ])
}
