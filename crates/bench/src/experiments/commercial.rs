//! Figures 12–13: the OTT run under the "commercial system A/B" optimizer
//! profiles — independently configured optimizers (left-deep/no-MCV and
//! bushy/no-MCV with different cost units) that fall into the same trap,
//! because the failure is in histogram+AVI estimation, not in any one
//! system's search strategy. Re-optimization numbers are shown alongside
//! to substantiate the paper's speculation that "commercial systems could
//! also benefit from our re-optimization technique".

use crate::harness::{fmt_ms, Runner, RunnerConfig, TextTable};
use reopt_common::Result;
use reopt_optimizer::SystemProfile;
use reopt_workloads::ott::{
    build_ott_database, ott_query, ott_query_suite, recommended_sample_ratio, OttConfig,
};

/// The Figures 12–13 experiment.
pub fn run(quick: bool) -> Result<Vec<TextTable>> {
    let config = OttConfig {
        rows_per_value: if quick { 10 } else { 20 },
        ..Default::default()
    };
    let db = build_ott_database(&config)?;
    let runner_config = RunnerConfig {
        sample_ratio: recommended_sample_ratio(&config),
        ..Default::default()
    };

    let mut tables = Vec::new();
    for (profile, fig) in [
        (SystemProfile::CommercialA, "Figure 12"),
        (SystemProfile::CommercialB, "Figure 13"),
    ] {
        let runner = Runner::new(&db, profile.config(), runner_config.clone())?;
        for (n, m, label) in [(5usize, 4usize, "(a) 4-join"), (6, 4, "(b) 5-join")] {
            let mut t = TextTable::new(
                format!(
                    "{fig}{label} — OTT on {} (paper: original plans as bad as PostgreSQL's; re-optimization repairs them)",
                    profile.name()
                ),
                &["query", "constants", "original", "re-optimized"],
            );
            for (i, consts) in ott_query_suite(n, m).into_iter().enumerate() {
                let q = ott_query(&db, &consts)?;
                let run = runner.run_query(&q)?;
                t.push(vec![
                    format!("{}", i + 1),
                    format!("{consts:?}"),
                    fmt_ms(run.original_ms),
                    fmt_ms(run.reopt_ms),
                ]);
            }
            tables.push(t);
        }
    }
    Ok(tables)
}
