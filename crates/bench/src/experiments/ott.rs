//! Figures 10, 11, 16, 17, 18: the Optimizer Torture Test.
//!
//! The paper's headline result: original plans take hundreds to thousands
//! of seconds, re-optimized plans finish in under a second, uniformly
//! across all 10 four-join and 30 five-join queries. At library scale the
//! absolute numbers shrink but the orders-of-magnitude gap and the
//! all-queries-fixed pattern are the reproduction targets.

use crate::harness::{fmt_ms, Runner, RunnerConfig, TextTable};
use reopt_common::Result;
use reopt_optimizer::{calibrate, OptimizerConfig};
use reopt_workloads::ott::{
    build_ott_database, ott_query, ott_query_suite, recommended_sample_ratio, OttConfig,
};

/// Measurements for one OTT suite (n tables, m majority selections).
pub struct OttSuiteResult {
    /// Per-query rows: (constants, original ms, reopt ms, overhead ms,
    /// plans, rows).
    pub rows: Vec<(Vec<i64>, f64, f64, f64, usize, u64)>,
}

/// Run one OTT suite against a runner.
pub fn run_suite(runner: &Runner<'_>, n: usize, m: usize) -> Result<OttSuiteResult> {
    let mut rows = Vec::new();
    for consts in ott_query_suite(n, m) {
        let q = ott_query(runner.database(), &consts)?;
        let run = runner.run_query(&q)?;
        rows.push((
            consts,
            run.original_ms,
            run.reopt_ms,
            run.reopt_overhead_ms,
            run.distinct_plans,
            run.join_rows,
        ));
    }
    Ok(OttSuiteResult { rows })
}

/// The full Figures 10/11 + 16/17/18 experiment.
pub fn run(quick: bool) -> Result<Vec<TextTable>> {
    let config = OttConfig {
        rows_per_value: if quick { 10 } else { 20 },
        ..Default::default()
    };
    let db = build_ott_database(&config)?;
    let runner_config = RunnerConfig {
        sample_ratio: recommended_sample_ratio(&config),
        ..Default::default()
    };
    let runner = Runner::new(&db, OptimizerConfig::postgres_like(), runner_config)?;

    let report = calibrate(7, 1);
    let mut calib = OptimizerConfig::postgres_like();
    calib.cost_units = report.units;
    let runner_cal = runner.with_optimizer_config(calib);

    let mut tables = Vec::new();
    for (n, m, fig_rt, fig_plans, fig_ovh) in [
        (5usize, 4usize, "Figure 10", "Figure 16(a)", "Figure 17"),
        (6, 4, "Figure 11", "Figure 16(b)", "Figure 18"),
    ] {
        let base = run_suite(&runner, n, m)?;
        let cal = run_suite(&runner_cal, n, m)?;

        let mut t = TextTable::new(
            format!(
                "{fig_rt} — OTT {}-join queries (paper: original plans 100s–1000s of seconds, re-optimized < 1 s)",
                n - 1
            ),
            &["query", "constants", "orig (default)", "reopt (default)", "orig (calibrated)", "reopt (calibrated)", "result rows"],
        );
        for (i, ((c, o, r, _, _, rows), (_, oc, rc, _, _, _))) in
            base.rows.iter().zip(&cal.rows).enumerate()
        {
            t.push(vec![
                format!("{}", i + 1),
                format!("{c:?}"),
                fmt_ms(*o),
                fmt_ms(*r),
                fmt_ms(*oc),
                fmt_ms(*rc),
                rows.to_string(),
            ]);
        }
        tables.push(t);

        let mut tp = TextTable::new(
            format!("{fig_plans} — plans generated during OTT re-optimization"),
            &["query", "plans (default)", "plans (calibrated)"],
        );
        for (i, ((_, _, _, _, p, _), (_, _, _, _, pc, _))) in
            base.rows.iter().zip(&cal.rows).enumerate()
        {
            tp.push(vec![format!("{}", i + 1), p.to_string(), pc.to_string()]);
        }
        tables.push(tp);

        let mut to = TextTable::new(
            format!("{fig_ovh} — OTT execution excluding vs including re-optimization time"),
            &["query", "exec only", "reopt + exec"],
        );
        for (i, (_, _, r, ovh, _, _)) in base.rows.iter().enumerate() {
            to.push(vec![format!("{}", i + 1), fmt_ms(*r), fmt_ms(*r + *ovh)]);
        }
        tables.push(to);
    }
    Ok(tables)
}
