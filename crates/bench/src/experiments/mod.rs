//! One module per experiment family; the `fig*` binaries are thin wrappers
//! around these so `reproduce_all` can chain them in-process.

pub mod ablations;
pub mod commercial;
pub mod ott;
pub mod rounds;
pub mod theory;
pub mod tpcds;
pub mod tpch;
