//! Figures 4–9: TPC-H-like runtimes (original vs re-optimized), number of
//! plans during re-optimization, and re-optimization overhead — on the
//! uniform (z=0) and skewed (z=1) databases, with default and calibrated
//! cost units.

use crate::harness::{fmt_ms, Runner, RunnerConfig, TextTable};
use reopt_common::rng::derive_rng_indexed;
use reopt_common::Result;
use reopt_optimizer::{calibrate, OptimizerConfig};
use reopt_workloads::tpch::{
    all_template_names, build_tpch_database, instantiate, is_hard_template, TpchConfig,
};

/// Per-template averaged measurements for one (z, calibration) setting.
#[derive(Debug, Clone)]
pub struct TemplateResult {
    /// Template name (q1, q2, …).
    pub name: &'static str,
    /// Mean original-plan execution time (ms).
    pub original_ms: f64,
    /// Mean re-optimized-plan execution time (ms).
    pub reopt_ms: f64,
    /// Mean re-optimization loop time (ms).
    pub overhead_ms: f64,
    /// Max distinct plans across instances.
    pub plans: usize,
    /// Instances whose plan changed.
    pub changed: usize,
    /// Instance count.
    pub instances: usize,
}

/// Run every template on one runner; returns per-template averages.
pub fn run_templates(
    runner: &Runner<'_>,
    instances: usize,
    seed: u64,
) -> Result<Vec<TemplateResult>> {
    let mut out = Vec::new();
    for name in all_template_names() {
        let mut orig = 0.0;
        let mut reopt = 0.0;
        let mut overhead = 0.0;
        let mut plans = 0usize;
        let mut changed = 0usize;
        for inst in 0..instances as u64 {
            let mut rng = derive_rng_indexed(seed, name, inst);
            let q = instantiate(runner.database(), name, &mut rng)?;
            let run = runner.run_query(&q)?;
            orig += run.original_ms;
            reopt += run.reopt_ms;
            overhead += run.reopt_overhead_ms;
            plans = plans.max(run.distinct_plans);
            changed += run.plan_changed as usize;
        }
        let n = instances as f64;
        out.push(TemplateResult {
            name,
            original_ms: orig / n,
            reopt_ms: reopt / n,
            overhead_ms: overhead / n,
            plans,
            changed,
            instances,
        });
    }
    Ok(out)
}

/// The full Figures 4–6 (z=0) or 7–9 (z=1) experiment.
pub fn run(z: f64, quick: bool) -> Result<Vec<TextTable>> {
    let instances = if quick { 2 } else { 10 };
    let scale = if quick { 0.005 } else { 0.02 };
    let db = build_tpch_database(&TpchConfig {
        scale,
        zipf_z: z,
        ..Default::default()
    })?;
    let runner = Runner::new(
        &db,
        OptimizerConfig::postgres_like(),
        RunnerConfig::default(),
    )?;

    // Calibrated variant: measured cost units, same stats/samples.
    let report = calibrate(7, 1);
    let mut calib_config = OptimizerConfig::postgres_like();
    calib_config.cost_units = report.units;
    let runner_cal = runner.with_optimizer_config(calib_config);

    let base = run_templates(&runner, instances, 0x7c9)?;
    let cal = run_templates(&runner_cal, instances, 0x7c9)?;

    let (fa, fb, fplans, fover) = figure_ids(z);
    let mut t_runtime = TextTable::new(
        format!(
            "{fa} — TPC-H-like z={z}: runtime, original vs re-optimized (paper shape: most templates unchanged; hard set [q8 q9 q17 q21] improves severalfold)"
        ),
        &["query", "hard", "orig (default)", "reopt (default)", "orig (calibrated)", "reopt (calibrated)"],
    );
    for (b, c) in base.iter().zip(&cal) {
        t_runtime.push(vec![
            b.name.to_string(),
            if is_hard_template(b.name) {
                "*".into()
            } else {
                "".into()
            },
            fmt_ms(b.original_ms),
            fmt_ms(b.reopt_ms),
            fmt_ms(c.original_ms),
            fmt_ms(c.reopt_ms),
        ]);
    }

    let mut t_plans = TextTable::new(
        format!("{fplans} — number of plans generated during re-optimization (paper: 1 for unchanged queries, small otherwise)"),
        &["query", "plans (default units)", "plans (calibrated)", "changed (default)", "instances"],
    );
    for (b, c) in base.iter().zip(&cal) {
        t_plans.push(vec![
            b.name.to_string(),
            b.plans.to_string(),
            c.plans.to_string(),
            format!("{}/{}", b.changed, b.instances),
            b.instances.to_string(),
        ]);
    }

    let mut t_overhead = TextTable::new(
        format!("{fover} — execution time excluding vs including re-optimization (paper: overhead ignorable)"),
        &["query", "exec only", "reopt + exec", "overhead %"],
    );
    for b in &base {
        let total = b.reopt_ms + b.overhead_ms;
        let pct = if b.reopt_ms > 0.0 {
            100.0 * b.overhead_ms / total.max(1e-9)
        } else {
            0.0
        };
        t_overhead.push(vec![
            b.name.to_string(),
            fmt_ms(b.reopt_ms),
            fmt_ms(total),
            format!("{pct:.1}%"),
        ]);
    }

    let _ = fb;
    Ok(vec![t_runtime, t_plans, t_overhead])
}

fn figure_ids(z: f64) -> (&'static str, &'static str, &'static str, &'static str) {
    if z == 0.0 {
        ("Figure 4(a)+(b)", "4b", "Figure 5", "Figure 6")
    } else {
        ("Figure 7(a)+(b)", "7b", "Figure 8", "Figure 9")
    }
}
