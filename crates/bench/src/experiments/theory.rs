//! Figure 3 + Appendix B: the S_N curve against its √N envelopes, the
//! Monte-Carlo check of Procedure 1, and the over/underestimation-only
//! step bounds.

use crate::harness::TextTable;
use reopt_analysis::{
    overestimate_only_bound, s_n, simulate_mean, sn_series, underestimate_only_expected,
};

/// Render the Figure 3 series (sampled at round values of N) plus the
/// simulation cross-check and the Appendix B bounds.
pub fn run(quick: bool) -> Vec<TextTable> {
    let mut fig3 = TextTable::new(
        "Figure 3 — expected re-optimization steps S_N vs N (paper: S_N grows like sqrt(N), between sqrt(N) and 2*sqrt(N))",
        &["N", "S_N (Eq.1)", "sqrt(N)", "2*sqrt(N)", "simulated"],
    );
    let ns: &[u64] = if quick {
        &[1, 10, 50, 100, 500, 1000]
    } else {
        &[
            1, 10, 25, 50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000,
        ]
    };
    let trials = if quick { 2_000 } else { 10_000 };
    let series = sn_series(1000);
    for &n in ns {
        let p = series[(n - 1) as usize];
        let sim = simulate_mean(n as usize, trials, 0xf163);
        fig3.push(vec![
            n.to_string(),
            format!("{:.2}", p.s_n),
            format!("{:.2}", p.sqrt_n),
            format!("{:.2}", p.two_sqrt_n),
            format!("{sim:.2}"),
        ]);
    }

    let mut appb = TextTable::new(
        "Appendix B — error-direction step bounds (paper example: N=1000, M=10: S_N=39 vs S_(N/M)=12)",
        &["scenario", "parameters", "bound/expectation"],
    );
    appb.push(vec![
        "overestimates only (Thm 7)".into(),
        "m = 4 joins".into(),
        format!("≤ {} steps", overestimate_only_bound(4)),
    ]);
    appb.push(vec![
        "overestimates only (Thm 7)".into(),
        "m = 7 joins".into(),
        format!("≤ {} steps", overestimate_only_bound(7)),
    ]);
    appb.push(vec![
        "unrestricted (Thm 4)".into(),
        "N = 1000".into(),
        format!("E[steps] = {:.1}", s_n(1000)),
    ]);
    appb.push(vec![
        "underestimates only".into(),
        "N = 1000, M = 10 edges".into(),
        format!(
            "E[steps] ≤ S_(N/M) = {:.1}",
            underestimate_only_expected(1000, 10)
        ),
    ]);
    vec![fig3, appb]
}
