//! Figures 19–20: the TPC-DS-like workload (Appendix A.2).
//!
//! Expected shape: no remarkable improvement on the stock templates (the
//! paper found the same), `q28`/`q55`/`q62` trivially unchanged, and the
//! hand-tweaked `q50p` variant improving severalfold once re-optimization
//! catches the sale→return date correlation.

use crate::harness::{fmt_ms, Runner, RunnerConfig, TextTable};
use reopt_common::rng::derive_rng_indexed;
use reopt_common::Result;
use reopt_optimizer::{calibrate, OptimizerConfig};
use reopt_workloads::tpcds::{all_template_names, build_tpcds_database, instantiate, TpcdsConfig};

/// The Figures 19–20 experiment.
pub fn run(quick: bool) -> Result<Vec<TextTable>> {
    let instances = if quick { 1 } else { 5 };
    let db = build_tpcds_database(&TpcdsConfig {
        scale: if quick { 0.2 } else { 1.0 },
        ..Default::default()
    })?;
    let runner = Runner::new(
        &db,
        OptimizerConfig::postgres_like(),
        RunnerConfig::default(),
    )?;
    let report = calibrate(7, 1);
    let mut calib = OptimizerConfig::postgres_like();
    calib.cost_units = report.units;
    let runner_cal = runner.with_optimizer_config(calib);

    let mut t_rt = TextTable::new(
        "Figure 19 — TPC-DS-like runtimes (paper: only Q50' improves, ~57% reduction)",
        &[
            "query",
            "orig (default)",
            "reopt (default)",
            "orig (calibrated)",
            "reopt (calibrated)",
        ],
    );
    let mut t_plans = TextTable::new(
        "Figure 20 — plans generated during TPC-DS re-optimization",
        &["query", "plans (default)", "plans (calibrated)"],
    );

    for name in all_template_names() {
        let mut sums = [0.0f64; 4];
        let mut plans = (0usize, 0usize);
        for inst in 0..instances as u64 {
            let mut rng = derive_rng_indexed(0xd5e, name, inst);
            let q = instantiate(&db, name, &mut rng)?;
            let run = runner.run_query(&q)?;
            let mut rng = derive_rng_indexed(0xd5e, name, inst);
            let q2 = instantiate(&db, name, &mut rng)?;
            let run_cal = runner_cal.run_query(&q2)?;
            sums[0] += run.original_ms;
            sums[1] += run.reopt_ms;
            sums[2] += run_cal.original_ms;
            sums[3] += run_cal.reopt_ms;
            plans.0 = plans.0.max(run.distinct_plans);
            plans.1 = plans.1.max(run_cal.distinct_plans);
        }
        let n = instances as f64;
        t_rt.push(vec![
            name.to_string(),
            fmt_ms(sums[0] / n),
            fmt_ms(sums[1] / n),
            fmt_ms(sums[2] / n),
            fmt_ms(sums[3] / n),
        ]);
        t_plans.push(vec![
            name.to_string(),
            plans.0.to_string(),
            plans.1.to_string(),
        ]);
    }
    Ok(vec![t_rt, t_plans])
}
