//! The optimizer facade: validate, estimate, search.
//!
//! This is the `GetPlanFromOptimizer(Γ)` of Algorithm 1 — a conventional
//! cost-based optimizer whose only unusual feature is that it accepts a set
//! of externally supplied cardinalities (Γ) which take precedence over its
//! own statistics. The paper emphasizes that this requires "almost no
//! changes to the original query optimizer"; here it is literally one extra
//! lookup in the cardinality estimator.

use crate::cardinality::{CardEstConfig, CardinalityEstimator};
use crate::cost::{CostModel, CostUnits};
use crate::dp::{plan_dp, plan_dp_incremental, OperatorSet, SearchStats};
use crate::geqo::{plan_geqo, GeqoConfig};
use crate::memo::PlanMemo;
use crate::overrides::CardOverrides;
use reopt_common::{Error, Result};
use reopt_plan::{PhysicalPlan, Query};
use reopt_stats::DatabaseStats;
use reopt_storage::Database;

/// Full optimizer configuration.
#[derive(Debug, Clone, Default)]
pub struct OptimizerConfig {
    /// Cost units (default: PostgreSQL's).
    pub cost_units: CostUnits,
    /// Cardinality estimation knobs.
    pub cardinality: CardEstConfig,
    /// Operator availability.
    pub operators: OperatorSet,
    /// Restrict the search to left-deep trees.
    pub left_deep_only: bool,
    /// Switch from DP to GEQO above this relation count (PostgreSQL's
    /// `geqo_threshold` defaults to 12).
    pub geqo_threshold: usize,
    /// GEQO parameters.
    pub geqo: GeqoConfig,
}

impl OptimizerConfig {
    /// PostgreSQL-like defaults.
    pub fn postgres_like() -> Self {
        OptimizerConfig {
            geqo_threshold: 12,
            ..Default::default()
        }
    }
}

/// The result of one optimization call.
#[derive(Debug, Clone)]
pub struct Planned {
    /// The chosen physical plan.
    pub plan: PhysicalPlan,
    /// Search-effort statistics.
    pub search: SearchStats,
}

/// A cost-based optimizer bound to a database and its statistics.
#[derive(Debug)]
pub struct Optimizer<'a> {
    db: &'a Database,
    stats: &'a DatabaseStats,
    config: OptimizerConfig,
}

impl<'a> Optimizer<'a> {
    /// Optimizer with PostgreSQL-like defaults.
    pub fn new(db: &'a Database, stats: &'a DatabaseStats) -> Self {
        Self::with_config(db, stats, OptimizerConfig::postgres_like())
    }

    /// Optimizer with an explicit configuration.
    pub fn with_config(
        db: &'a Database,
        stats: &'a DatabaseStats,
        config: OptimizerConfig,
    ) -> Self {
        let mut config = config;
        if config.geqo_threshold == 0 {
            config.geqo_threshold = 12;
        }
        Optimizer { db, stats, config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// The database this optimizer plans against.
    pub fn database(&self) -> &'a Database {
        self.db
    }

    /// The statistics this optimizer estimates from.
    pub fn stats(&self) -> &'a DatabaseStats {
        self.stats
    }

    /// Optimize with empty Γ (a conventional one-shot optimization).
    pub fn optimize(&self, query: &Query) -> Result<Planned> {
        self.optimize_with(query, &CardOverrides::new())
    }

    /// Optimize with validated cardinalities Γ — Algorithm 1's
    /// `GetPlanFromOptimizer(Γ)`.
    pub fn optimize_with(&self, query: &Query, overrides: &CardOverrides) -> Result<Planned> {
        query.validate(self.db)?;
        let mut est = CardinalityEstimator::new(
            self.db,
            self.stats,
            query,
            overrides,
            &self.config.cardinality,
        )?;
        let model = CostModel::new(self.config.cost_units);
        let (plan, search) = if query.num_relations() > self.config.geqo_threshold {
            plan_geqo(
                self.db,
                query,
                &mut est,
                &model,
                &self.config.operators,
                &self.config.geqo,
            )?
        } else {
            plan_dp(
                self.db,
                query,
                &mut est,
                &model,
                &self.config.operators,
                self.config.left_deep_only,
            )?
        };
        Ok(Planned { plan, search })
    }

    /// Like [`Optimizer::optimize_with`], but reusing (and refilling) a
    /// cross-round DP memo — the incremental path of the re-optimization
    /// loop. The caller owns `memo` and must (a) use it with one fixed
    /// (query, optimizer) pair only and (b) call
    /// [`PlanMemo::invalidate_supersets`] with every Γ delta before the
    /// next call. Queries beyond `geqo_threshold` relations fall back to
    /// the (memo-less) GEQO search.
    pub fn optimize_incremental(
        &self,
        query: &Query,
        overrides: &CardOverrides,
        memo: &mut PlanMemo,
    ) -> Result<Planned> {
        if query.num_relations() > self.config.geqo_threshold {
            // The genetic search keeps no DP table to reuse.
            return self.optimize_with(query, overrides);
        }
        query.validate(self.db)?;
        let mut est = CardinalityEstimator::new(
            self.db,
            self.stats,
            query,
            overrides,
            &self.config.cardinality,
        )?;
        let model = CostModel::new(self.config.cost_units);
        let (plan, search) = plan_dp_incremental(
            self.db,
            query,
            &mut est,
            &model,
            &self.config.operators,
            self.config.left_deep_only,
            memo,
        )?;
        Ok(Planned { plan, search })
    }

    /// Like [`Optimizer::optimize_incremental`], but with completed
    /// subtrees pinned as atomic zero-cost leaves — the mid-query re-plan
    /// of a suspended execution (see [`crate::dp::plan_dp_pinned`]). The
    /// returned plan contains every pin verbatim and never costs a set
    /// that straddles a pin boundary, so it cannot re-execute any part of
    /// a checkpointed result. The caller must invalidate memo supersets of
    /// every pin (and of every refined Γ set) before calling.
    ///
    /// Pinned re-planning requires the DP search: queries beyond
    /// `geqo_threshold` relations are rejected — the genetic fallback
    /// cannot honor pin boundaries, and silently dropping them would make
    /// the plan re-execute checkpointed work.
    pub fn optimize_with_pinned(
        &self,
        query: &Query,
        overrides: &CardOverrides,
        pinned: &[crate::dp::PinnedLeaf],
        memo: &mut PlanMemo,
    ) -> Result<Planned> {
        if pinned.is_empty() {
            return self.optimize_incremental(query, overrides, memo);
        }
        if query.num_relations() > self.config.geqo_threshold {
            return Err(reopt_common::Error::invalid(format!(
                "pinned re-planning needs the DP search: {} relations exceeds geqo_threshold {}",
                query.num_relations(),
                self.config.geqo_threshold
            )));
        }
        query.validate(self.db)?;
        let mut est = CardinalityEstimator::new(
            self.db,
            self.stats,
            query,
            overrides,
            &self.config.cardinality,
        )?;
        let model = CostModel::new(self.config.cost_units);
        let (plan, search) = crate::dp::plan_dp_pinned(
            self.db,
            query,
            &mut est,
            &model,
            &self.config.operators,
            self.config.left_deep_only,
            memo,
            pinned,
        )?;
        Ok(Planned { plan, search })
    }

    /// Estimate the cardinality of the join result covering `set`, under
    /// the given Γ — exposes the estimator for callers that need to compare
    /// sampling results against the optimizer's beliefs (e.g. conservative
    /// acceptance).
    pub fn estimate_rows(
        &self,
        query: &Query,
        overrides: &CardOverrides,
        set: reopt_common::RelSet,
    ) -> Result<f64> {
        let mut est = CardinalityEstimator::new(
            self.db,
            self.stats,
            query,
            overrides,
            &self.config.cardinality,
        )?;
        Ok(est.rows(set))
    }

    /// Re-estimate the cost of an *existing* plan structure under the given
    /// Γ — the paper's `cost_s(P)` when Γ holds the sampling-validated
    /// cardinalities of P's joins (§3.4). Returns (rows, cost) at the root.
    pub fn cost_plan(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        overrides: &CardOverrides,
    ) -> Result<(f64, f64)> {
        let mut est = CardinalityEstimator::new(
            self.db,
            self.stats,
            query,
            overrides,
            &self.config.cardinality,
        )?;
        let model = CostModel::new(self.config.cost_units);
        cost_subtree(self.db, query, &mut est, &model, plan)
    }
}

/// Recursively re-cost a plan structure under an estimator.
fn cost_subtree(
    db: &Database,
    query: &Query,
    est: &mut CardinalityEstimator<'_>,
    model: &CostModel,
    plan: &PhysicalPlan,
) -> Result<(f64, f64)> {
    use reopt_plan::{AccessPath, CmpOp, JoinAlgo};
    match plan {
        PhysicalPlan::Scan {
            rel, table, access, ..
        } => {
            let t = db.table(*table)?;
            let preds = query.local_predicates(*rel);
            let pages = t.heap_pages() as f64;
            let trows = est.table_rows(*rel);
            let rows = est.rows(reopt_common::RelSet::single(*rel));
            let cost = match access {
                AccessPath::SeqScan => model.seq_scan(pages, trows, preds.len()),
                AccessPath::IndexScan { col } => {
                    let driving = preds.iter().find(|p| p.col == *col && p.op == CmpOp::Eq);
                    let matched = match driving {
                        Some(p) => {
                            trows
                                * crate::cardinality::local_selectivity(db, est.stats(), query, p)?
                        }
                        None => trows,
                    };
                    model.index_scan(pages, trows, matched, preds.len().saturating_sub(1))
                }
            };
            Ok((rows, cost))
        }
        PhysicalPlan::Join {
            algo,
            left,
            right,
            keys,
            ..
        } => {
            let set = plan.relset();
            let out_rows = est.rows(set);
            let (lrows, lcost) = cost_subtree(db, query, est, model, left)?;
            match algo {
                JoinAlgo::IndexNested => {
                    let inner_rel = right.relset().min_rel().ok_or_else(|| {
                        Error::internal("index-nested inner subtree covers no relation")
                    })?;
                    let inner_table = db.table(query.table_of(inner_rel)?)?;
                    let residuals =
                        query.local_predicates(inner_rel).len() + keys.len().saturating_sub(1);
                    let cost = lcost
                        + model.index_nested_loop(
                            lrows,
                            inner_table.heap_pages() as f64,
                            inner_table.row_count() as f64,
                            out_rows,
                            residuals,
                        );
                    Ok((out_rows, cost))
                }
                _ => {
                    let (rrows, rcost) = cost_subtree(db, query, est, model, right)?;
                    let join_cost = match algo {
                        JoinAlgo::Hash => model.hash_join(lrows, rrows, out_rows),
                        JoinAlgo::Merge => model.merge_join(lrows, rrows, out_rows),
                        JoinAlgo::NestedLoop => model.nested_loop(lrows, rrows, out_rows),
                        JoinAlgo::IndexNested => {
                            // Handled by the dedicated arm above when the
                            // plan is well-formed; a malformed or
                            // future-transformed plan must surface as a
                            // costing error, not panic whoever asked for a
                            // cost (in a service that is the single-flight
                            // leader, taking every coalesced waiter down
                            // with it).
                            return Err(reopt_common::Error::internal(
                                "index-nested-loop join reached the generic cost path; \
                                 the physical plan is malformed",
                            ));
                        }
                    };
                    Ok((out_rows, lcost + rcost + join_cost))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::{ColId, RelSet, TableId};
    use reopt_plan::query::ColRef;
    use reopt_plan::{Predicate, QueryBuilder};
    use reopt_stats::{analyze_database, AnalyzeOpts};
    use reopt_storage::{Column, ColumnDef, LogicalType, Table, TableSchema};

    fn chain_db(k: usize, vals: i64, per: usize) -> Database {
        let mut db = Database::new();
        for t in 0..k {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![
                    ColumnDef::new("a", LogicalType::Int),
                    ColumnDef::new("b", LogicalType::Int),
                ])?;
                let mut data = Vec::new();
                for v in 0..vals {
                    data.extend(std::iter::repeat_n(v, per));
                }
                let mut tbl = Table::new(
                    id,
                    format!("r{t}"),
                    schema,
                    vec![
                        Column::from_i64(LogicalType::Int, data.clone()),
                        Column::from_i64(LogicalType::Int, data),
                    ],
                )?;
                tbl.create_index(ColId::new(0))?;
                tbl.create_index(ColId::new(1))?;
                Ok(tbl)
            })
            .unwrap();
        }
        db
    }

    fn chain_query(k: usize, consts: &[i64]) -> Query {
        let mut qb = QueryBuilder::new();
        let rels: Vec<_> = (0..k).map(|i| qb.add_relation(TableId::from(i))).collect();
        for (i, &r) in rels.iter().enumerate() {
            qb.add_predicate(Predicate::eq(r, ColId::new(0), consts[i]));
        }
        for w in rels.windows(2) {
            qb.add_join(
                ColRef::new(w[0], ColId::new(1)),
                ColRef::new(w[1], ColId::new(1)),
            );
        }
        qb.build()
    }

    #[test]
    fn optimize_produces_full_plan() {
        let db = chain_db(4, 50, 10);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let opt = Optimizer::new(&db, &stats);
        let q = chain_query(4, &[0, 0, 0, 0]);
        let planned = opt.optimize(&q).unwrap();
        assert_eq!(planned.plan.relset(), RelSet::first_n(4));
        assert!(planned.plan.est_cost() > 0.0);
    }

    #[test]
    fn cost_plan_matches_dp_annotation_for_chosen_plan() {
        let db = chain_db(3, 50, 10);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let opt = Optimizer::new(&db, &stats);
        let q = chain_query(3, &[0, 0, 0]);
        let g = CardOverrides::new();
        let planned = opt.optimize_with(&q, &g).unwrap();
        let (rows, cost) = opt.cost_plan(&q, &planned.plan, &g).unwrap();
        assert!((cost - planned.plan.est_cost()).abs() < 1e-6 * cost.max(1.0));
        assert!((rows - planned.plan.est_rows()).abs() < 1e-6 * rows.max(1.0));
    }

    #[test]
    fn overrides_change_the_plan() {
        let db = chain_db(4, 50, 10);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let opt = Optimizer::new(&db, &stats);
        let q = chain_query(4, &[0, 0, 0, 0]);
        let p1 = opt.optimize(&q).unwrap();

        // Claim the first join of p1 is enormous.
        let first_join = p1.plan.logical_tree().join_sets()[0];
        let mut g = CardOverrides::new();
        g.insert(first_join, 1e12);
        let p2 = opt.optimize_with(&q, &g).unwrap();
        assert!(!p1.plan.same_structure(&p2.plan));
        // The new plan avoids the poisoned join.
        assert!(p2
            .plan
            .logical_tree()
            .join_sets()
            .iter()
            .all(|s| *s != first_join));
    }

    #[test]
    fn geqo_engages_above_threshold() {
        let db = chain_db(6, 20, 4);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let mut config = OptimizerConfig::postgres_like();
        config.geqo_threshold = 4; // force GEQO for this 6-way chain
        let opt = Optimizer::with_config(&db, &stats, config);
        let q = chain_query(6, &[0; 6]);
        let planned = opt.optimize(&q).unwrap();
        assert_eq!(planned.plan.relset(), RelSet::first_n(6));
        // GEQO builds left-deep trees.
        assert!(planned.plan.logical_tree().is_left_deep());
        // Deterministic under the same seed.
        let planned2 = opt.optimize(&q).unwrap();
        assert!(planned.plan.same_structure(&planned2.plan));
    }

    #[test]
    fn left_deep_config_respected() {
        let db = chain_db(5, 20, 4);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let mut config = OptimizerConfig::postgres_like();
        config.left_deep_only = true;
        let opt = Optimizer::with_config(&db, &stats, config);
        let q = chain_query(5, &[0; 5]);
        let planned = opt.optimize(&q).unwrap();
        assert!(planned.plan.logical_tree().is_left_deep());
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let db = chain_db(2, 10, 2);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let opt = Optimizer::new(&db, &stats);
        let q = QueryBuilder::new().build();
        assert!(opt.optimize(&q).is_err());
    }
}
