//! GEQO-style randomized join-order search for many-relation queries.
//!
//! PostgreSQL abandons exhaustive DP beyond `geqo_threshold` (12 by
//! default) relations and switches to a genetic algorithm over left-deep
//! join orders — the paper's footnote 2 cites exactly this behaviour as a
//! reason to express its complexity results in terms of the search-space
//! size `N` rather than the join count `m`. This module reproduces the
//! switch: a seeded genetic algorithm over *connectivity-valid*
//! permutations, order crossover plus swap mutation with greedy repair.
//!
//! Fitness evaluation reuses the same cardinality estimator and cost model
//! as the DP, so Γ overrides steer GEQO exactly as they steer DP.

use crate::cardinality::CardinalityEstimator;
use crate::cost::CostModel;
use crate::dp::{OperatorSet, SearchStats};
use rand::RngExt;
use reopt_common::rng::{derive_rng, Rng};
use reopt_common::{Error, RelId, RelSet, Result};
use reopt_plan::physical::PlanNodeInfo;
use reopt_plan::query::ColRef;
use reopt_plan::{AccessPath, CmpOp, JoinAlgo, PhysicalPlan, Query};
use reopt_storage::Database;

/// GEQO tuning parameters.
#[derive(Debug, Clone)]
pub struct GeqoConfig {
    /// Population size (PostgreSQL derives it from the join count; we use
    /// a fixed floor).
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// RNG seed; GEQO is fully deterministic given the seed and query.
    pub seed: u64,
}

impl Default for GeqoConfig {
    fn default() -> Self {
        GeqoConfig {
            population: 40,
            generations: 60,
            seed: 0x6e0_f00d,
        }
    }
}

/// Plan a many-relation query with the genetic search.
pub fn plan_geqo(
    db: &Database,
    query: &Query,
    est: &mut CardinalityEstimator<'_>,
    model: &CostModel,
    ops: &OperatorSet,
    config: &GeqoConfig,
) -> Result<(PhysicalPlan, SearchStats)> {
    let n = query.num_relations();
    if n < 2 {
        return Err(Error::invalid("GEQO requires at least two relations"));
    }
    let mut rng = derive_rng(config.seed, "geqo");
    let mut stats = SearchStats::default();

    // Initial population of connectivity-valid orders.
    let mut population: Vec<(Vec<u32>, f64)> = Vec::with_capacity(config.population);
    for _ in 0..config.population {
        let order = random_valid_order(query, est, &mut rng);
        let cost = order_cost(db, query, est, model, ops, &order)?;
        stats.join_orders_considered += 1;
        population.push((order, cost));
    }
    population.sort_by(|a, b| a.1.total_cmp(&b.1));

    for _ in 0..config.generations {
        // Tournament-select two parents.
        let pick = |rng: &mut Rng, pop: &[(Vec<u32>, f64)]| -> Vec<u32> {
            let a = rng.random_range(0..pop.len());
            let b = rng.random_range(0..pop.len());
            pop[a.min(b)].0.clone() // population kept sorted: lower idx = fitter
        };
        let p1 = pick(&mut rng, &population);
        let p2 = pick(&mut rng, &population);
        let mut child = order_crossover(&p1, &p2, &mut rng);
        if rng.random_bool(0.3) {
            swap_mutation(&mut child, &mut rng);
        }
        repair_connectivity(query, est, &mut child);
        let cost = order_cost(db, query, est, model, ops, &child)?;
        stats.join_orders_considered += 1;
        // Replace the worst individual if the child improves on it. The
        // population was filled above, so `last()` cannot miss; treat a
        // corrupted state as an error, not a panic.
        let worst = population
            .last()
            .ok_or_else(|| Error::internal("geqo population is empty"))?
            .1;
        if cost < worst {
            population.pop();
            let pos = population
                .binary_search_by(|e| e.1.total_cmp(&cost))
                .unwrap_or_else(|p| p);
            population.insert(pos, (child, cost));
        }
    }

    let best_order = &population[0].0;
    let plan = build_left_deep_plan(db, query, est, model, ops, best_order)?;
    stats.subsets = n;
    Ok((plan, stats))
}

/// A random relation order in which every prefix is connected.
fn random_valid_order(query: &Query, est: &CardinalityEstimator<'_>, rng: &mut Rng) -> Vec<u32> {
    let n = query.num_relations();
    let graph = est.graph();
    let start = rng.random_range(0..n as u32);
    let mut order = vec![start];
    let mut set = RelSet::single(RelId::new(start));
    while order.len() < n {
        let frontier: Vec<RelId> = graph.neighbors(set).iter().collect();
        let next = frontier[rng.random_range(0..frontier.len())];
        order.push(next.0);
        set = set.with(next);
    }
    order
}

/// Order crossover (OX): copy a slice from parent 1, fill the rest in
/// parent 2's order.
fn order_crossover(p1: &[u32], p2: &[u32], rng: &mut Rng) -> Vec<u32> {
    let n = p1.len();
    let (mut a, mut b) = (rng.random_range(0..n), rng.random_range(0..n));
    if a > b {
        std::mem::swap(&mut a, &mut b);
    }
    let slice: Vec<u32> = p1[a..=b].to_vec();
    let mut child = Vec::with_capacity(n);
    for &g in p2 {
        if !slice.contains(&g) {
            child.push(g);
        }
    }
    // Insert the slice at position a.
    let tail = child.split_off(a.min(child.len()));
    child.extend(slice);
    child.extend(tail);
    child
}

fn swap_mutation(order: &mut [u32], rng: &mut Rng) {
    let n = order.len();
    let i = rng.random_range(0..n);
    let j = rng.random_range(0..n);
    order.swap(i, j);
}

/// Greedy repair: walk the order; when the next relation is not connected
/// to the prefix, swap in the first later relation that is.
fn repair_connectivity(query: &Query, est: &CardinalityEstimator<'_>, order: &mut [u32]) {
    let graph = est.graph();
    let mut set = RelSet::single(RelId::new(order[0]));
    for i in 1..order.len() {
        let connected = |g: u32| graph.connects(set, RelSet::single(RelId::new(g)));
        if !connected(order[i]) {
            if let Some(j) = (i + 1..order.len()).find(|&j| connected(order[j])) {
                order.swap(i, j);
            }
        }
        set = set.with(RelId::new(order[i]));
    }
    let _ = query;
}

/// Cost of the best left-deep plan following `order` exactly.
fn order_cost(
    db: &Database,
    query: &Query,
    est: &mut CardinalityEstimator<'_>,
    model: &CostModel,
    ops: &OperatorSet,
    order: &[u32],
) -> Result<f64> {
    Ok(build_left_deep_plan(db, query, est, model, ops, order)?.est_cost())
}

/// Materialize the best left-deep physical plan for a fixed relation order
/// (operator and access-path choices are still optimized per step).
pub fn build_left_deep_plan(
    db: &Database,
    query: &Query,
    est: &mut CardinalityEstimator<'_>,
    model: &CostModel,
    ops: &OperatorSet,
    order: &[u32],
) -> Result<PhysicalPlan> {
    let first = RelId::new(order[0]);
    let mut current = access_path(db, query, est, model, ops, first)?;
    let mut set = RelSet::single(first);
    for &g in &order[1..] {
        let rel = RelId::new(g);
        let rset = RelSet::single(rel);
        let out_rows = est.rows(set.with(rel));
        let keys = keys_between(query, set, rset);
        if keys.is_empty() {
            return Err(Error::invalid(
                "GEQO order creates a cross product (disconnected prefix)",
            ));
        }
        let lrows = current.est_rows();
        let right = access_path(db, query, est, model, ops, rel)?;
        let rrows = right.est_rows();
        let input_cost = current.est_cost() + right.est_cost();

        // Candidate operators (same menu as the DP).
        let mut best: Option<(JoinAlgo, f64, PhysicalPlan)> = None;
        let mut consider = |algo: JoinAlgo, cost: f64, inner: PhysicalPlan| {
            if best.as_ref().is_none_or(|b| cost < b.1) {
                best = Some((algo, cost, inner));
            }
        };
        if ops.hash {
            consider(
                JoinAlgo::Hash,
                input_cost + model.hash_join(lrows, rrows, out_rows),
                right.clone(),
            );
        }
        if ops.merge {
            consider(
                JoinAlgo::Merge,
                input_cost + model.merge_join(lrows, rrows, out_rows),
                right.clone(),
            );
        }
        if ops.nested_loop {
            consider(
                JoinAlgo::NestedLoop,
                input_cost + model.nested_loop(lrows, rrows, out_rows),
                right.clone(),
            );
        }
        if ops.index_nested {
            let inner_table = db.table(query.table_of(rel)?)?;
            let first_col = keys[0].1.col;
            if inner_table.has_index(first_col) {
                let residuals = query.local_predicates(rel).len() + keys.len() - 1;
                let cost = current.est_cost()
                    + model.index_nested_loop(
                        lrows,
                        inner_table.heap_pages() as f64,
                        inner_table.row_count() as f64,
                        out_rows,
                        residuals,
                    );
                let inner = PhysicalPlan::Scan {
                    rel,
                    table: inner_table.id(),
                    access: AccessPath::SeqScan,
                    info: PlanNodeInfo::default(),
                };
                consider(JoinAlgo::IndexNested, cost, inner);
            }
        }
        let (algo, cost, inner) =
            best.ok_or_else(|| Error::internal("no join operator available"))?;
        current = PhysicalPlan::Join {
            algo,
            left: Box::new(current),
            right: Box::new(inner),
            keys,
            info: PlanNodeInfo {
                est_rows: out_rows,
                est_cost: cost,
            },
        };
        set = set.with(rel);
    }
    Ok(current)
}

fn keys_between(query: &Query, left: RelSet, right: RelSet) -> Vec<(ColRef, ColRef)> {
    let mut keys = Vec::new();
    for j in &query.joins {
        if left.contains(j.left_rel) && right.contains(j.right_rel) {
            keys.push((
                ColRef::new(j.left_rel, j.left_col),
                ColRef::new(j.right_rel, j.right_col),
            ));
        } else if right.contains(j.left_rel) && left.contains(j.right_rel) {
            keys.push((
                ColRef::new(j.right_rel, j.right_col),
                ColRef::new(j.left_rel, j.left_col),
            ));
        }
    }
    keys
}

/// Cheapest access path for one relation (shared shape with the DP's).
fn access_path(
    db: &Database,
    query: &Query,
    est: &mut CardinalityEstimator<'_>,
    model: &CostModel,
    ops: &OperatorSet,
    rel: RelId,
) -> Result<PhysicalPlan> {
    let table_id = query.table_of(rel)?;
    let table = db.table(table_id)?;
    let preds = query.local_predicates(rel);
    let pages = table.heap_pages() as f64;
    let trows = est.table_rows(rel);
    let out_rows = est.rows(RelSet::single(rel));
    let mut best_cost = model.seq_scan(pages, trows, preds.len());
    let mut best_access = AccessPath::SeqScan;
    if ops.index_scan {
        for p in preds {
            if p.op == CmpOp::Eq && table.has_index(p.col) {
                let sel = crate::cardinality::local_selectivity(db, est.stats(), query, p)?;
                let cost = model.index_scan(pages, trows, trows * sel, preds.len() - 1);
                if cost < best_cost {
                    best_cost = cost;
                    best_access = AccessPath::IndexScan { col: p.col };
                }
            }
        }
    }
    Ok(PhysicalPlan::Scan {
        rel,
        table: table_id,
        access: best_access,
        info: PlanNodeInfo {
            est_rows: out_rows,
            est_cost: best_cost,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::{CardEstConfig, CardinalityEstimator};
    use crate::overrides::CardOverrides;
    use reopt_common::{ColId, TableId};
    use reopt_plan::{Predicate, QueryBuilder};
    use reopt_stats::{analyze_database, AnalyzeOpts, DatabaseStats};
    use reopt_storage::LogicalType;
    use reopt_storage::{Column, ColumnDef, Database, Table, TableSchema};

    fn chain_db(k: usize) -> (Database, DatabaseStats) {
        let mut db = Database::new();
        for t in 0..k {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![
                    ColumnDef::new("a", LogicalType::Int),
                    ColumnDef::new("b", LogicalType::Int),
                ])?;
                let data: Vec<i64> = (0..200).map(|i| i % 40).collect();
                let mut tbl = Table::new(
                    id,
                    format!("g{t}"),
                    schema,
                    vec![
                        Column::from_i64(LogicalType::Int, data.clone()),
                        Column::from_i64(LogicalType::Int, data),
                    ],
                )?;
                tbl.create_index(ColId::new(0))?;
                tbl.create_index(ColId::new(1))?;
                Ok(tbl)
            })
            .unwrap();
        }
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        (db, stats)
    }

    fn chain_query(k: usize) -> Query {
        let mut qb = QueryBuilder::new();
        let rels: Vec<_> = (0..k).map(|i| qb.add_relation(TableId::from(i))).collect();
        for (i, &r) in rels.iter().enumerate() {
            qb.add_predicate(Predicate::eq(r, ColId::new(0), (i % 3) as i64));
        }
        for w in rels.windows(2) {
            qb.add_join(
                ColRef::new(w[0], ColId::new(1)),
                ColRef::new(w[1], ColId::new(1)),
            );
        }
        qb.build()
    }

    fn run_geqo(
        db: &Database,
        stats: &DatabaseStats,
        q: &Query,
        gamma: &CardOverrides,
        seed: u64,
    ) -> PhysicalPlan {
        let mut est =
            CardinalityEstimator::new(db, stats, q, gamma, &CardEstConfig::default()).unwrap();
        let config = GeqoConfig {
            seed,
            ..Default::default()
        };
        plan_geqo(
            db,
            q,
            &mut est,
            &CostModel::default(),
            &OperatorSet::default(),
            &config,
        )
        .unwrap()
        .0
    }

    #[test]
    fn produces_valid_left_deep_plan() {
        let (db, stats) = chain_db(13);
        let q = chain_query(13);
        let g = CardOverrides::new();
        let plan = run_geqo(&db, &stats, &q, &g, 1);
        assert_eq!(plan.relset(), RelSet::first_n(13));
        assert!(plan.logical_tree().is_left_deep());
        // Chain topology: no cross products possible in a valid plan.
        plan.visit(&mut |n| {
            if let PhysicalPlan::Join { keys, .. } = n {
                assert!(!keys.is_empty());
            }
        });
    }

    #[test]
    fn deterministic_per_seed() {
        let (db, stats) = chain_db(13);
        let q = chain_query(13);
        let g = CardOverrides::new();
        let a = run_geqo(&db, &stats, &q, &g, 7);
        let b = run_geqo(&db, &stats, &q, &g, 7);
        assert!(a.same_structure(&b));
    }

    #[test]
    fn gamma_steers_geqo_away_from_poisoned_joins() {
        let (db, stats) = chain_db(13);
        let q = chain_query(13);
        let g = CardOverrides::new();
        let base = run_geqo(&db, &stats, &q, &g, 1);
        // Poison the base plan's first join.
        let first = base.logical_tree().join_sets()[0];
        let mut g2 = CardOverrides::new();
        g2.insert(first, 1.0e12);
        let steered = run_geqo(&db, &stats, &q, &g2, 1);
        assert!(
            steered
                .logical_tree()
                .join_sets()
                .iter()
                .all(|s| *s != first),
            "poisoned join {first:?} still present"
        );
    }

    #[test]
    fn rejects_single_relation() {
        let (db, stats) = chain_db(1);
        let q = chain_query(1);
        let g = CardOverrides::new();
        let mut est =
            CardinalityEstimator::new(&db, &stats, &q, &g, &CardEstConfig::default()).unwrap();
        let r = plan_geqo(
            &db,
            &q,
            &mut est,
            &CostModel::default(),
            &OperatorSet::default(),
            &GeqoConfig::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn crossover_preserves_permutation() {
        let mut rng = derive_rng(3, "ox-test");
        let p1: Vec<u32> = vec![0, 1, 2, 3, 4, 5];
        let p2: Vec<u32> = vec![5, 4, 3, 2, 1, 0];
        for _ in 0..50 {
            let child = order_crossover(&p1, &p2, &mut rng);
            let mut sorted = child.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, p1, "child {child:?} not a permutation");
        }
    }

    #[test]
    fn repair_makes_orders_connected() {
        let (db, stats) = chain_db(8);
        let q = chain_query(8);
        let g = CardOverrides::new();
        let est =
            CardinalityEstimator::new(&db, &stats, &q, &g, &CardEstConfig::default()).unwrap();
        // A deliberately disconnected order for a chain graph: 0 then 7.
        let mut order: Vec<u32> = vec![0, 7, 1, 6, 2, 5, 3, 4];
        repair_connectivity(&q, &est, &mut order);
        // Every prefix must now be connected.
        let graph = est.graph();
        let mut set = RelSet::single(RelId::new(order[0]));
        for &g in &order[1..] {
            assert!(
                graph.connects(set, RelSet::single(RelId::new(g))),
                "prefix {set:?} disconnected from {g} in {order:?}"
            );
            set = set.with(RelId::new(g));
        }
    }
}
