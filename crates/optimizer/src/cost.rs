//! The cost model: PostgreSQL's five cost units over simple operator
//! formulas.
//!
//! §5.1.2 of the paper calibrates exactly these five parameters
//! (`seq_page_cost`, `random_page_cost`, `cpu_tuple_cost`,
//! `cpu_index_tuple_cost`, `cpu_operator_cost`) and shows that calibration
//! alone sometimes changes plan choice. The formulas below are
//! PostgreSQL-shaped but simplified: base-table scans pay page I/O,
//! intermediate results are in-memory (matching the engine's executor), and
//! there is no startup/total cost split.

use serde::{Deserialize, Serialize};

/// The five cost units. Values are abstract "cost points"; only ratios
/// matter for plan choice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostUnits {
    /// Cost of a sequentially fetched page.
    pub seq_page_cost: f64,
    /// Cost of a randomly fetched page.
    pub random_page_cost: f64,
    /// CPU cost of processing one tuple.
    pub cpu_tuple_cost: f64,
    /// CPU cost of processing one index entry.
    pub cpu_index_tuple_cost: f64,
    /// CPU cost of evaluating one operator/predicate.
    pub cpu_operator_cost: f64,
}

impl CostUnits {
    /// PostgreSQL's default values.
    pub fn postgres_defaults() -> Self {
        CostUnits {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_index_tuple_cost: 0.005,
            cpu_operator_cost: 0.0025,
        }
    }
}

impl Default for CostUnits {
    fn default() -> Self {
        Self::postgres_defaults()
    }
}

/// Operator cost formulas over the units.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CostModel {
    /// The unit vector in force.
    pub units: CostUnits,
}

impl CostModel {
    /// Model with explicit units.
    pub fn new(units: CostUnits) -> Self {
        CostModel { units }
    }

    /// Sequential scan of a base table: all pages + per-tuple CPU +
    /// per-tuple predicate evaluation.
    pub fn seq_scan(&self, pages: f64, table_rows: f64, num_preds: usize) -> f64 {
        let u = &self.units;
        pages * u.seq_page_cost
            + table_rows * u.cpu_tuple_cost
            + table_rows * num_preds as f64 * u.cpu_operator_cost
    }

    /// Index equality probe returning `matched_rows` of a table with
    /// `table_rows` rows over `table_pages` pages, with `residual_preds`
    /// further predicates applied. Heap I/O is charged *fractionally* —
    /// `matched × pages/rows` random pages, i.e. proportional to bytes
    /// actually touched. (Charging a whole page per matched row, as a
    /// disk-resident model would, overprices probes by orders of magnitude
    /// on an in-memory executor and breaks the cost-consistency the
    /// paper's Assumption 1 needs; see DESIGN.md §5.)
    pub fn index_scan(
        &self,
        table_pages: f64,
        table_rows: f64,
        matched_rows: f64,
        residual_preds: usize,
    ) -> f64 {
        let u = &self.units;
        let pages_per_row = table_pages / table_rows.max(1.0);
        let heap_pages = matched_rows * pages_per_row;
        u.random_page_cost * (1.0 + heap_pages) // 1 page of index descent
            + matched_rows * (u.cpu_index_tuple_cost + u.cpu_tuple_cost)
            + matched_rows * residual_preds as f64 * u.cpu_operator_cost
    }

    /// Hash join: build the right input, probe with the left.
    /// Input costs are *not* included.
    pub fn hash_join(&self, left_rows: f64, right_rows: f64, out_rows: f64) -> f64 {
        let u = &self.units;
        right_rows * (u.cpu_operator_cost + u.cpu_tuple_cost) // build
            + left_rows * u.cpu_operator_cost // probe
            + out_rows * u.cpu_tuple_cost // emit
    }

    /// Sort-merge join: sort both sides, merge, emit.
    pub fn merge_join(&self, left_rows: f64, right_rows: f64, out_rows: f64) -> f64 {
        let u = &self.units;
        let sort = |n: f64| {
            if n <= 1.0 {
                0.0
            } else {
                2.0 * n * n.log2() * u.cpu_operator_cost
            }
        };
        sort(left_rows)
            + sort(right_rows)
            + (left_rows + right_rows) * u.cpu_operator_cost
            + out_rows * u.cpu_tuple_cost
    }

    /// Naive nested loops (materialized inner, compared pairwise).
    pub fn nested_loop(&self, left_rows: f64, right_rows: f64, out_rows: f64) -> f64 {
        let u = &self.units;
        left_rows * right_rows * u.cpu_operator_cost + out_rows * u.cpu_tuple_cost
    }

    /// Index nested loops: per outer row, one index probe plus matched
    /// inner tuples; heap I/O charged fractionally as in
    /// [`CostModel::index_scan`]. The inner's scan cost is *replaced* by
    /// this, so the caller must not add the inner scan cost.
    pub fn index_nested_loop(
        &self,
        outer_rows: f64,
        inner_table_pages: f64,
        inner_table_rows: f64,
        out_rows: f64,
        residual_preds: usize,
    ) -> f64 {
        let u = &self.units;
        let matched_per_probe = if outer_rows > 0.0 {
            out_rows / outer_rows
        } else {
            0.0
        };
        let pages_per_row = inner_table_pages / inner_table_rows.max(1.0);
        let per_probe = u.random_page_cost * matched_per_probe * pages_per_row
            + u.cpu_operator_cost
            + matched_per_probe
                * (u.cpu_index_tuple_cost
                    + u.cpu_tuple_cost
                    + residual_preds as f64 * u.cpu_operator_cost);
        outer_rows * per_probe + out_rows * u.cpu_tuple_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn defaults_match_postgres() {
        let u = CostUnits::postgres_defaults();
        assert_eq!(u.seq_page_cost, 1.0);
        assert_eq!(u.random_page_cost, 4.0);
        assert_eq!(u.cpu_tuple_cost, 0.01);
        assert_eq!(u.cpu_index_tuple_cost, 0.005);
        assert_eq!(u.cpu_operator_cost, 0.0025);
    }

    #[test]
    fn seq_scan_scales_with_pages_and_predicates() {
        let m = model();
        let base = m.seq_scan(100.0, 10_000.0, 0);
        assert!(m.seq_scan(200.0, 10_000.0, 0) > base);
        assert!(m.seq_scan(100.0, 10_000.0, 3) > base);
        // 100 pages + 10k tuples = 100 + 100 = 200.
        assert!((base - 200.0).abs() < 1e-9);
    }

    #[test]
    fn index_scan_beats_seq_scan_for_selective_probes() {
        let m = model();
        // 1M-row, 10k-page table; probe matches 100 rows.
        let idx = m.index_scan(10_000.0, 1_000_000.0, 100.0, 0);
        let seq = m.seq_scan(10_000.0, 1_000_000.0, 1);
        assert!(idx < seq, "index {idx} vs seq {seq}");
    }

    #[test]
    fn index_scan_loses_for_unselective_probes() {
        let m = model();
        // Probe matching nearly the whole table: random pages + per-tuple
        // CPU swamp the sequential scan.
        let idx = m.index_scan(10_000.0, 1_000_000.0, 1_000_000.0, 0);
        let seq = m.seq_scan(10_000.0, 1_000_000.0, 1);
        assert!(idx > seq, "index {idx} vs seq {seq}");
    }

    #[test]
    fn hash_beats_nl_on_large_inputs() {
        let m = model();
        let h = m.hash_join(100_000.0, 100_000.0, 100_000.0);
        let nl = m.nested_loop(100_000.0, 100_000.0, 100_000.0);
        assert!(h < nl / 100.0);
    }

    #[test]
    fn merge_join_pays_sorts() {
        let m = model();
        let mj = m.merge_join(100_000.0, 100_000.0, 100_000.0);
        let hj = m.hash_join(100_000.0, 100_000.0, 100_000.0);
        assert!(mj > hj, "merge {mj} vs hash {hj}");
    }

    #[test]
    fn index_nl_wins_for_tiny_outer() {
        let m = model();
        // 10 outer rows probing a big table: far cheaper than hashing the
        // whole inner (1M rows).
        let inl = m.index_nested_loop(10.0, 10_000.0, 1_000_000.0, 10.0, 0);
        let build_all = m.hash_join(10.0, 1_000_000.0, 10.0);
        assert!(inl < build_all, "inl {inl} vs hash {build_all}");
    }

    #[test]
    fn index_nl_loses_for_huge_outer() {
        let m = model();
        // 1M outer probes each matching 10 rows: hashing the inner wins.
        let inl = m.index_nested_loop(1_000_000.0, 10_000.0, 1_000_000.0, 1e7, 0);
        let hash = m.hash_join(1_000_000.0, 1_000_000.0, 1e7);
        assert!(inl > hash, "inl {inl} vs hash {hash}");
    }

    #[test]
    fn costs_are_monotone_in_output() {
        let m = model();
        assert!(m.hash_join(1e4, 1e4, 1e6) > m.hash_join(1e4, 1e4, 1e2));
        assert!(m.merge_join(1e4, 1e4, 1e6) > m.merge_join(1e4, 1e4, 1e2));
        assert!(m.nested_loop(1e3, 1e3, 1e6) > m.nested_loop(1e3, 1e3, 1e2));
        assert!(
            m.index_nested_loop(1e3, 1e3, 1e5, 1e6, 0) > m.index_nested_loop(1e3, 1e3, 1e5, 1e2, 0)
        );
    }

    #[test]
    fn zero_outer_rows_index_nl_is_free_of_probes() {
        let m = model();
        let c = m.index_nested_loop(0.0, 1000.0, 1e5, 0.0, 2);
        assert_eq!(c, 0.0);
    }
}
