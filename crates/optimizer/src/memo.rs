//! Cross-round DP memoization for incremental re-optimization.
//!
//! The re-optimization loop calls the optimizer once per round, and
//! consecutive rounds differ only in Γ: round i+1 adds the cardinalities
//! validated from round i's plan. Because the DP entry for a relation set
//! `S` (its best subplan, rows and cost) depends *only* on the
//! cardinalities of subsets of `S` — input rows come from subsets, output
//! rows from `S` itself, everything else is static statistics — an entry
//! stays exact across rounds unless Γ gained an entry for some `C ⊆ S`.
//! [`PlanMemo`] holds the DP table between rounds and
//! [`PlanMemo::invalidate_supersets`] evicts exactly that stale frontier,
//! so each round re-plans only the subsets the new Γ entries can affect
//! (the incremental re-optimization direction of Liu et al., ICDE 2016).
//!
//! A memo is only meaningful for a fixed (query, optimizer configuration)
//! pair; [`crate::Optimizer::optimize_incremental`] documents the
//! contract and [`reopt_core`-level] callers own one memo per
//! re-optimization run.

use reopt_common::RelSet;
use reopt_plan::PhysicalPlan;
use reopt_storage::DataVersion;
use std::collections::BTreeMap;

/// One planned subtree: the DP table's value type.
#[derive(Debug, Clone)]
pub(crate) struct MemoEntry {
    /// Best physical subplan covering the set.
    pub(crate) plan: PhysicalPlan,
    /// Estimated output rows under the Γ in force when planned.
    pub(crate) rows: f64,
    /// Estimated cumulative cost under that Γ.
    pub(crate) cost: f64,
}

/// A persistent DP table keyed by [`RelSet`], reusable across
/// re-optimization rounds.
///
/// Ordered map (rule R1): invalidation visits the table, and the DP's
/// lookups are set-keyed, so an ordered walk keeps every traversal of the
/// memo deterministic by construction.
/// A memo is additionally pinned to one [`DataVersion`]: its rows/costs
/// embed statistics and Γ entries derived from a specific data state, so
/// [`PlanMemo::set_data_version`] self-clears on any mismatch — a DP entry
/// planned against yesterday's statistics is structurally unreachable
/// after an ingest.
#[derive(Debug, Clone, Default)]
pub struct PlanMemo {
    entries: BTreeMap<RelSet, MemoEntry>,
    /// The data state every resident entry was planned against.
    version: DataVersion,
}

impl PlanMemo {
    /// Empty memo (round 1 of a re-optimization run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized subsets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `set` has a (non-stale) entry.
    pub fn contains(&self, set: RelSet) -> bool {
        self.entries.contains_key(&set)
    }

    /// Drop every entry — e.g. when switching to a different query.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The data state the resident entries were planned against.
    pub fn data_version(&self) -> DataVersion {
        self.version
    }

    /// Pin the memo to `version`, clearing it first if the resident
    /// entries were planned against a different data state. Returns `true`
    /// when entries were dropped — a cross-version DP reuse is thereby
    /// structurally impossible, not merely discouraged.
    pub fn set_data_version(&mut self, version: DataVersion) -> bool {
        if self.version == version {
            return false;
        }
        let had = !self.entries.is_empty();
        self.entries.clear();
        self.version = version;
        had
    }

    /// Evict every entry whose set is a superset of any `changed` set and
    /// return how many were evicted. The cost/rows of a set `S` depend only
    /// on cardinalities of subsets of `S`, so entries with no changed
    /// subset remain exact.
    pub fn invalidate_supersets(&mut self, changed: &[RelSet]) -> usize {
        if changed.is_empty() {
            return 0;
        }
        let before = self.entries.len();
        self.entries
            .retain(|set, _| !changed.iter().any(|c| c.is_subset_of(*set)));
        before - self.entries.len()
    }

    pub(crate) fn get(&self, set: RelSet) -> Option<&MemoEntry> {
        self.entries.get(&set)
    }

    pub(crate) fn insert(&mut self, set: RelSet, entry: MemoEntry) {
        self.entries.insert(set, entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::RelId;
    use reopt_plan::physical::PlanNodeInfo;
    use reopt_plan::{AccessPath, PhysicalPlan};

    fn rs(ids: &[u32]) -> RelSet {
        ids.iter().map(|&i| RelId::new(i)).collect()
    }

    fn entry() -> MemoEntry {
        MemoEntry {
            plan: PhysicalPlan::Scan {
                rel: RelId::new(0),
                table: reopt_common::TableId::new(0),
                access: AccessPath::SeqScan,
                info: PlanNodeInfo::default(),
            },
            rows: 1.0,
            cost: 1.0,
        }
    }

    #[test]
    fn invalidation_evicts_exactly_the_superset_frontier() {
        let mut memo = PlanMemo::new();
        for sets in [&[0][..], &[1], &[2], &[0, 1], &[1, 2], &[0, 1, 2]] {
            memo.insert(rs(sets), entry());
        }
        assert_eq!(memo.len(), 6);
        // Γ gained {0,1}: stale entries are {0,1} and {0,1,2}.
        let evicted = memo.invalidate_supersets(&[rs(&[0, 1])]);
        assert_eq!(evicted, 2);
        assert!(!memo.contains(rs(&[0, 1])));
        assert!(!memo.contains(rs(&[0, 1, 2])));
        assert!(memo.contains(rs(&[0])));
        assert!(memo.contains(rs(&[1, 2])));
    }

    #[test]
    fn singleton_change_invalidates_everything_containing_it() {
        let mut memo = PlanMemo::new();
        for sets in [&[0][..], &[1], &[0, 1]] {
            memo.insert(rs(sets), entry());
        }
        let evicted = memo.invalidate_supersets(&[rs(&[1])]);
        assert_eq!(evicted, 2);
        assert!(memo.contains(rs(&[0])));
    }

    #[test]
    fn version_pin_clears_on_mismatch_only() {
        let mut memo = PlanMemo::new();
        memo.insert(rs(&[0]), entry());
        // Same version: a no-op.
        assert!(!memo.set_data_version(DataVersion::ZERO));
        assert_eq!(memo.len(), 1);
        // Data moved: the whole table is stale.
        assert!(memo.set_data_version(DataVersion::new(1)));
        assert!(memo.is_empty());
        assert_eq!(memo.data_version(), DataVersion::new(1));
        // Clearing an already-empty memo reports no drop.
        assert!(!memo.set_data_version(DataVersion::new(2)));
    }

    #[test]
    fn empty_change_list_is_a_no_op() {
        let mut memo = PlanMemo::new();
        memo.insert(rs(&[0]), entry());
        assert_eq!(memo.invalidate_supersets(&[]), 0);
        assert_eq!(memo.len(), 1);
        memo.clear();
        assert!(memo.is_empty());
    }
}
