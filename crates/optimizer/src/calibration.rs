//! Offline calibration of the five cost units (§5.1.2 of the paper, after
//! Wu et al., ICDE 2013).
//!
//! The paper replaces PostgreSQL's default cost-unit values with values
//! measured on the actual machine, and shows that this alone can flip plan
//! choices (their Figure 4(b) vs 4(a)). We reproduce the procedure against
//! this engine's executor: five micro-profiles, each dominated by one unit,
//! timed on synthetic data, then normalized so `seq_page_cost = 1.0`.
//!
//! On an in-memory engine the headline effect is that
//! `random_page_cost / seq_page_cost` collapses from the default 4.0 to
//! ≈1–2, making index paths relatively cheaper — the same direction the
//! paper observes on a warm buffer pool.

use std::hint::black_box;

use crate::cost::CostUnits;
use rand::RngExt;
use reopt_common::rng::derive_rng;
use reopt_common::{FxHashMap, Stopwatch};
use reopt_storage::page::PAGE_SIZE;

/// Raw per-operation timings (nanoseconds) behind a calibrated unit vector.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationReport {
    /// ns per sequentially read page.
    pub seq_page_ns: f64,
    /// ns per randomly read page.
    pub random_page_ns: f64,
    /// ns per tuple processed.
    pub cpu_tuple_ns: f64,
    /// ns per index entry processed.
    pub cpu_index_tuple_ns: f64,
    /// ns per operator evaluation.
    pub cpu_operator_ns: f64,
    /// The normalized unit vector (seq page = 1.0).
    pub units: CostUnits,
}

/// Run the calibration micro-profiles. `seed` drives the synthetic data;
/// `scale` multiplies the profile sizes (1 is adequate and takes well under
/// a second).
pub fn calibrate(seed: u64, scale: usize) -> CalibrationReport {
    let scale = scale.max(1);
    let n_tuples: usize = 1_000_000 * scale;
    let mut rng = derive_rng(seed, "calibration");

    // Synthetic column data.
    let data: Vec<i64> = (0..n_tuples as i64).collect();
    let words_per_page = (PAGE_SIZE / 8) as usize;
    let n_pages = n_tuples / words_per_page;

    // --- cpu_tuple: touch every tuple once.
    let t0 = Stopwatch::start();
    let mut acc = 0i64;
    for &v in &data {
        acc = acc.wrapping_add(v);
    }
    black_box(acc);
    let cpu_tuple_ns = t0.elapsed().as_nanos() as f64 / n_tuples as f64;

    // --- cpu_operator: same traversal plus 4 comparisons per tuple; the
    // delta over the plain traversal, divided by 4, isolates one operator.
    let t0 = Stopwatch::start();
    let mut count = 0u64;
    for &v in &data {
        if v > 100 && v < 900_000 && v != 12_345 && v % 2 == 0 {
            count += 1;
        }
    }
    black_box(count);
    let with_ops_ns = t0.elapsed().as_nanos() as f64 / n_tuples as f64;
    let cpu_operator_ns = ((with_ops_ns - cpu_tuple_ns) / 4.0).max(cpu_tuple_ns * 0.05);

    // --- cpu_index_tuple: hash-index probes returning one entry each.
    let index: FxHashMap<i64, u32> = data.iter().map(|&v| (v, v as u32)).collect();
    let probes: Vec<i64> = (0..200_000)
        .map(|_| rng.random_range(0..n_tuples as i64))
        .collect();
    let t0 = Stopwatch::start();
    let mut hits = 0u64;
    for &p in &probes {
        if index.contains_key(&p) {
            hits += 1;
        }
    }
    black_box(hits);
    let cpu_index_tuple_ns = t0.elapsed().as_nanos() as f64 / probes.len() as f64;

    // --- seq_page: stream the data page by page.
    let t0 = Stopwatch::start();
    let mut acc = 0i64;
    for page in data.chunks(words_per_page) {
        for &v in page {
            acc = acc.wrapping_add(v);
        }
    }
    black_box(acc);
    let seq_page_ns = (t0.elapsed().as_nanos() as f64 / n_pages.max(1) as f64).max(1.0);

    // --- random_page: read the same number of pages in random order.
    let mut order: Vec<usize> = (0..n_pages).collect();
    // Fisher-Yates with the seeded rng.
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let t0 = Stopwatch::start();
    let mut acc = 0i64;
    for &p in &order {
        let start = p * words_per_page;
        for &v in &data[start..start + words_per_page] {
            acc = acc.wrapping_add(v);
        }
    }
    black_box(acc);
    let random_page_ns = (t0.elapsed().as_nanos() as f64 / n_pages.max(1) as f64).max(1.0);

    let norm = seq_page_ns;
    let units = CostUnits {
        seq_page_cost: 1.0,
        random_page_cost: (random_page_ns / norm).max(0.1),
        cpu_tuple_cost: (cpu_tuple_ns / norm).max(1e-6),
        cpu_index_tuple_cost: (cpu_index_tuple_ns / norm).max(1e-6),
        cpu_operator_cost: (cpu_operator_ns / norm).max(1e-6),
    };
    CalibrationReport {
        seq_page_ns,
        random_page_ns,
        cpu_tuple_ns,
        cpu_index_tuple_ns,
        cpu_operator_ns,
        units,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_sane_units() {
        let r = calibrate(42, 1);
        let u = r.units;
        assert_eq!(u.seq_page_cost, 1.0);
        assert!(u.random_page_cost > 0.0 && u.random_page_cost.is_finite());
        assert!(u.cpu_tuple_cost > 0.0);
        assert!(u.cpu_index_tuple_cost > 0.0);
        assert!(u.cpu_operator_cost > 0.0);
        // Per-tuple work must be far cheaper than a whole page.
        assert!(u.cpu_tuple_cost < 1.0, "cpu_tuple {}", u.cpu_tuple_cost);
        // In memory, random page reads are not 4× sequential; they are
        // below the default penalty (this is the calibration's point).
        assert!(
            u.random_page_cost < 4.0,
            "random_page {}",
            u.random_page_cost
        );
    }

    #[test]
    fn raw_timings_are_positive() {
        let r = calibrate(7, 1);
        assert!(r.seq_page_ns > 0.0);
        assert!(r.random_page_ns > 0.0);
        assert!(r.cpu_tuple_ns > 0.0);
        assert!(r.cpu_index_tuple_ns > 0.0);
        assert!(r.cpu_operator_ns > 0.0);
    }
}
