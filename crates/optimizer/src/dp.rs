//! Bottom-up dynamic-programming join enumeration (System R / PostgreSQL
//! style), over connected subgraphs only (no cross products), with
//! per-subset physical operator and access-path choice.
//!
//! The paper's host optimizer is PostgreSQL's bottom-up DP (footnote 2);
//! this module reproduces that search. Bushy trees are considered by
//! default; a left-deep-only mode supports the Appendix B analyses and the
//! "commercial system A" profile.

use crate::cardinality::CardinalityEstimator;
use crate::cost::CostModel;
use crate::memo::{MemoEntry, PlanMemo};
use reopt_common::{Error, RelId, RelSet, Result};
use reopt_plan::physical::PlanNodeInfo;
use reopt_plan::query::ColRef;
use reopt_plan::{AccessPath, CmpOp, JoinAlgo, PhysicalPlan, Query};
use reopt_storage::Database;

/// Which physical operators the planner may use.
#[derive(Debug, Clone)]
pub struct OperatorSet {
    /// Allow hash joins.
    pub hash: bool,
    /// Allow sort-merge joins.
    pub merge: bool,
    /// Allow naive nested loops.
    pub nested_loop: bool,
    /// Allow index nested loops.
    pub index_nested: bool,
    /// Allow index scans on base relations.
    pub index_scan: bool,
}

impl Default for OperatorSet {
    fn default() -> Self {
        OperatorSet {
            hash: true,
            merge: true,
            nested_loop: true,
            index_nested: true,
            index_scan: true,
        }
    }
}

/// Search-effort accounting, reported alongside the chosen plan.
///
/// `join_orders_considered` approximates the paper's `N` — the number of
/// distinct join trees the optimizer evaluates.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Connected subsets covered (re-planned + reused).
    pub subsets: usize,
    /// (subset split, orientation, operator) combinations costed.
    pub join_orders_considered: usize,
    /// Subsets taken unchanged from a cross-round [`PlanMemo`].
    pub subsets_reused: usize,
    /// Subsets actually (re-)planned by this invocation.
    pub subsets_replanned: usize,
}

/// A completed subtree pinned into a mid-query re-plan: its result is
/// already materialized (checkpointed), so the planner treats it as an
/// atomic, **zero-cost leaf** — never decomposed, never re-executed, with
/// its exact observed cardinality as the row count.
#[derive(Debug, Clone)]
pub struct PinnedLeaf {
    /// Relations the completed subtree covers.
    pub set: RelSet,
    /// The plan that computed it — spliced verbatim into the re-planned
    /// tree so the executor's checkpoint splice finds the identical
    /// subtree shape.
    pub plan: PhysicalPlan,
    /// Exact observed output cardinality.
    pub rows: f64,
}

impl PinnedLeaf {
    /// True when `set` can appear in a plan alongside these pins: it must
    /// contain each pin entirely or avoid it entirely. A set that
    /// straddles a pin boundary would force re-executing part of a
    /// checkpointed result.
    fn respects(pinned: &[PinnedLeaf], set: RelSet) -> bool {
        pinned
            .iter()
            .all(|p| p.set.is_subset_of(set) || p.set.is_disjoint(set))
    }

    fn is_pin(pinned: &[PinnedLeaf], set: RelSet) -> bool {
        pinned.iter().any(|p| p.set == set)
    }

    fn covers_rel(pinned: &[PinnedLeaf], rel: RelId) -> bool {
        pinned.iter().any(|p| p.set.contains(rel))
    }
}

/// Plan `query` by dynamic programming.
///
/// `est` supplies (Γ-overridden) cardinalities; `model` the cost formulas.
pub fn plan_dp(
    db: &Database,
    query: &Query,
    est: &mut CardinalityEstimator<'_>,
    model: &CostModel,
    ops: &OperatorSet,
    left_deep_only: bool,
) -> Result<(PhysicalPlan, SearchStats)> {
    let mut memo = PlanMemo::new();
    plan_dp_incremental(db, query, est, model, ops, left_deep_only, &mut memo)
}

/// Plan `query` by dynamic programming over a persistent DP table.
///
/// Entries already present in `memo` are reused verbatim; only missing
/// subsets are (re-)planned. The caller is responsible for evicting stale
/// entries (via [`PlanMemo::invalidate_supersets`]) whenever Γ changes and
/// for never sharing one memo across different queries or optimizer
/// configurations. With an empty memo this is exactly the from-scratch
/// search.
#[allow(clippy::too_many_arguments)]
pub fn plan_dp_incremental(
    db: &Database,
    query: &Query,
    est: &mut CardinalityEstimator<'_>,
    model: &CostModel,
    ops: &OperatorSet,
    left_deep_only: bool,
    memo: &mut PlanMemo,
) -> Result<(PhysicalPlan, SearchStats)> {
    plan_dp_pinned(db, query, est, model, ops, left_deep_only, memo, &[])
}

/// Plan `query` by dynamic programming with completed subtrees pinned as
/// zero-cost leaves — the mid-query re-plan of a suspended execution.
///
/// Each [`PinnedLeaf`] is atomic: the search never decomposes it, never
/// costs any set that straddles its boundary (partially overlaps it), and
/// splices its already-executed plan in verbatim at cost 0 with its exact
/// observed row count. Consequently the returned plan can never re-execute
/// any part of a checkpointed relation set. Pins must be disjoint (they
/// are maximal completed breakers) and the caller must invalidate memo
/// supersets of every pin before calling — entries planned under smaller
/// pins may decompose across the new boundary.
#[allow(clippy::too_many_arguments)]
pub fn plan_dp_pinned(
    db: &Database,
    query: &Query,
    est: &mut CardinalityEstimator<'_>,
    model: &CostModel,
    ops: &OperatorSet,
    left_deep_only: bool,
    memo: &mut PlanMemo,
    pinned: &[PinnedLeaf],
) -> Result<(PhysicalPlan, SearchStats)> {
    let n = query.num_relations();
    if n == 0 {
        return Err(Error::invalid("cannot plan an empty query"));
    }
    let full = RelSet::first_n(n);
    let mut stats = SearchStats::default();

    // Seed the pins: atomic leaves, already paid for. Unconditional
    // overwrite — an entry left over from before this subtree completed
    // carries a nonzero cost (and possibly a different shape).
    for p in pinned {
        if !p.set.is_subset_of(full) || p.set.is_empty() {
            return Err(Error::invalid(format!(
                "pinned leaf {} is not part of the query",
                p.set
            )));
        }
        memo.insert(
            p.set,
            MemoEntry {
                plan: p.plan.clone(),
                rows: p.rows,
                cost: 0.0,
            },
        );
        // No stats bump here: the enumeration below finds the entry via
        // `memo.contains` and counts it reused exactly once.
    }

    // Base relations: pick the best access path. Relations inside a
    // (multi-relation) pin are already materialized as part of it and must
    // not be planned as standalone leaves.
    for i in 0..n {
        let rel = RelId::from(i);
        let set = RelSet::single(rel);
        if PinnedLeaf::covers_rel(pinned, rel) && !PinnedLeaf::is_pin(pinned, set) {
            continue;
        }
        stats.subsets += 1;
        if memo.contains(set) {
            stats.subsets_reused += 1;
            continue;
        }
        let entry = best_access_path(db, query, est, model, ops, rel)?;
        memo.insert(set, entry);
        stats.subsets_replanned += 1;
    }
    if n == 1 {
        let e = memo
            .get(RelSet::single(RelId::new(0)))
            .ok_or_else(|| Error::internal("single-relation memo entry missing after seeding"))?;
        return Ok((e.plan.clone(), stats));
    }

    // Increasing mask order: every proper submask precedes its superset,
    // so by the time a set is processed all of its connected subsets are
    // in the memo (reused or freshly planned).
    for mask in 1..=full.mask() {
        let set = RelSet::from_mask(mask);
        if set.len() < 2 || !set.is_subset_of(full) {
            continue;
        }
        // Pin discipline: skip any set that straddles a pin boundary
        // (this also skips every proper subset of a pin — the pin is
        // atomic, its interior is not re-planned).
        if !PinnedLeaf::respects(pinned, set) {
            continue;
        }
        if !est.graph().is_set_connected(set) {
            continue;
        }
        if memo.contains(set) {
            stats.subsets += 1;
            stats.subsets_reused += 1;
            continue;
        }
        let lowest = RelSet::single(
            set.min_rel()
                .ok_or_else(|| Error::internal("non-empty set has no minimum relation"))?,
        );
        let mut best: Option<MemoEntry> = None;
        for s1 in set.proper_subsets() {
            // Canonical halving: s1 keeps the lowest relation.
            if !lowest.is_subset_of(s1) {
                continue;
            }
            let s2 = set.difference(s1);
            // Neither half may straddle a pin — the memo can still hold a
            // straddling entry planned before the pin existed, so the
            // boundary check must gate the lookup, not trust it.
            if !PinnedLeaf::respects(pinned, s1) || !PinnedLeaf::respects(pinned, s2) {
                continue;
            }
            let (Some(e1), Some(e2)) = (memo.get(s1), memo.get(s2)) else {
                continue; // a side is disconnected
            };
            if !est.graph().connects(s1, s2) {
                continue; // would be a cross product
            }
            let out_rows = est.rows(set);
            for (ls, rs, le, re) in [(s1, s2, e1, e2), (s2, s1, e2, e1)] {
                // A pinned leaf *is* a leaf for the left-deep discipline:
                // it enters the pipeline as one materialized input.
                if left_deep_only && rs.len() != 1 && !PinnedLeaf::is_pin(pinned, rs) {
                    continue;
                }
                let keys = join_keys(query, ls, rs);
                let candidates =
                    join_candidates(db, query, model, ops, ls, le, rs, re, &keys, out_rows)?;
                stats.join_orders_considered += candidates.len();
                for cand in candidates {
                    if best.as_ref().is_none_or(|b| cand.cost < b.cost) {
                        best = Some(cand);
                    }
                }
            }
        }
        if let Some(b) = best {
            memo.insert(set, b);
            stats.subsets += 1;
            stats.subsets_replanned += 1;
        }
    }

    let final_entry = memo
        .get(full)
        .ok_or_else(|| Error::internal("DP failed to cover the full relation set"))?;
    Ok((final_entry.plan.clone(), stats))
}

/// The equi-join keys between two disjoint relation sets, oriented
/// (left-side column, right-side column), in query join order.
fn join_keys(query: &Query, left: RelSet, right: RelSet) -> Vec<(ColRef, ColRef)> {
    let mut keys = Vec::new();
    for j in &query.joins {
        if left.contains(j.left_rel) && right.contains(j.right_rel) {
            keys.push((
                ColRef::new(j.left_rel, j.left_col),
                ColRef::new(j.right_rel, j.right_col),
            ));
        } else if right.contains(j.left_rel) && left.contains(j.right_rel) {
            keys.push((
                ColRef::new(j.right_rel, j.right_col),
                ColRef::new(j.left_rel, j.left_col),
            ));
        }
    }
    keys
}

#[allow(clippy::too_many_arguments)]
fn join_candidates(
    db: &Database,
    query: &Query,
    model: &CostModel,
    ops: &OperatorSet,
    _ls: RelSet,
    le: &MemoEntry,
    rs: RelSet,
    re: &MemoEntry,
    keys: &[(ColRef, ColRef)],
    out_rows: f64,
) -> Result<Vec<MemoEntry>> {
    let mut out = Vec::with_capacity(4);
    let input_cost = le.cost + re.cost;
    let (lrows, rrows) = (le.rows, re.rows);

    let mk = |algo: JoinAlgo, cost: f64, left: &MemoEntry, right: &MemoEntry| MemoEntry {
        plan: PhysicalPlan::Join {
            algo,
            left: Box::new(left.plan.clone()),
            right: Box::new(right.plan.clone()),
            keys: keys.to_vec(),
            info: PlanNodeInfo {
                est_rows: out_rows,
                est_cost: cost,
            },
        },
        rows: out_rows,
        cost,
    };

    if ops.hash && !keys.is_empty() {
        let c = input_cost + model.hash_join(lrows, rrows, out_rows);
        out.push(mk(JoinAlgo::Hash, c, le, re));
    }
    if ops.merge && !keys.is_empty() {
        let c = input_cost + model.merge_join(lrows, rrows, out_rows);
        out.push(mk(JoinAlgo::Merge, c, le, re));
    }
    if ops.nested_loop {
        let c = input_cost + model.nested_loop(lrows, rrows, out_rows);
        out.push(mk(JoinAlgo::NestedLoop, c, le, re));
    }
    if ops.index_nested && rs.len() == 1 && !keys.is_empty() {
        // Inner must be a base scan whose first-key column is indexed.
        let inner_rel = rs
            .min_rel()
            .ok_or_else(|| Error::internal("singleton inner set has no relation"))?;
        let inner_table = db.table(query.table_of(inner_rel)?)?;
        let first_inner_col = keys[0].1.col;
        if inner_table.has_index(first_inner_col) {
            // The inner's own scan cost is replaced by per-probe work.
            let residuals = query.local_predicates(inner_rel).len() + keys.len() - 1;
            let c = le.cost
                + model.index_nested_loop(
                    lrows,
                    inner_table.heap_pages() as f64,
                    inner_table.row_count() as f64,
                    out_rows,
                    residuals,
                );
            // Inner node: a plain scan marker (executor probes the index).
            let inner = MemoEntry {
                plan: PhysicalPlan::Scan {
                    rel: inner_rel,
                    table: inner_table.id(),
                    access: AccessPath::SeqScan,
                    info: PlanNodeInfo {
                        est_rows: 0.0,
                        est_cost: 0.0,
                    },
                },
                rows: 0.0,
                cost: 0.0,
            };
            out.push(mk(JoinAlgo::IndexNested, c, le, &inner));
        }
    }
    Ok(out)
}

/// Best access path for one base relation.
fn best_access_path(
    db: &Database,
    query: &Query,
    est: &mut CardinalityEstimator<'_>,
    model: &CostModel,
    ops: &OperatorSet,
    rel: RelId,
) -> Result<MemoEntry> {
    let table_id = query.table_of(rel)?;
    let table = db.table(table_id)?;
    let preds = query.local_predicates(rel);
    let pages = table.heap_pages() as f64;
    let trows = est.table_rows(rel);
    let out_rows = est.rows(RelSet::single(rel));

    let seq_cost = model.seq_scan(pages, trows, preds.len());
    let mut best = MemoEntry {
        plan: PhysicalPlan::Scan {
            rel,
            table: table_id,
            access: AccessPath::SeqScan,
            info: PlanNodeInfo {
                est_rows: out_rows,
                est_cost: seq_cost,
            },
        },
        rows: out_rows,
        cost: seq_cost,
    };

    if ops.index_scan {
        for p in preds {
            if p.op != CmpOp::Eq || !table.has_index(p.col) {
                continue;
            }
            // Rows matched by the probe itself (native estimate for this
            // single predicate).
            let sel = crate::cardinality::local_selectivity(db, est.stats(), query, p)?;
            let matched = (trows * sel).max(0.0);
            let cost = model.index_scan(pages, trows, matched, preds.len() - 1);
            if cost < best.cost {
                best = MemoEntry {
                    plan: PhysicalPlan::Scan {
                        rel,
                        table: table_id,
                        access: AccessPath::IndexScan { col: p.col },
                        info: PlanNodeInfo {
                            est_rows: out_rows,
                            est_cost: cost,
                        },
                    },
                    rows: out_rows,
                    cost,
                };
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::CardEstConfig;
    use crate::overrides::CardOverrides;
    use reopt_common::ColId;
    use reopt_plan::{Predicate, QueryBuilder};
    use reopt_stats::{analyze_database, AnalyzeOpts, DatabaseStats};
    use reopt_storage::{Column, ColumnDef, LogicalType, Table, TableSchema};

    /// A small star: fact(fk1, fk2, v) 10k rows; dim1(k) 100 rows;
    /// dim2(k) 10 rows. Indexes on all keys.
    fn star_db() -> Database {
        let mut db = Database::new();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("fk1", LogicalType::Int),
                ColumnDef::new("fk2", LogicalType::Int),
                ColumnDef::new("v", LogicalType::Int),
            ])?;
            let n = 10_000i64;
            let mut t = Table::new(
                id,
                "fact",
                schema,
                vec![
                    Column::from_i64(LogicalType::Int, (0..n).map(|i| i % 100).collect()),
                    Column::from_i64(LogicalType::Int, (0..n).map(|i| i % 10).collect()),
                    Column::from_i64(LogicalType::Int, (0..n).collect()),
                ],
            )?;
            t.create_index(ColId::new(0))?;
            t.create_index(ColId::new(1))?;
            Ok(t)
        })
        .unwrap();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![ColumnDef::new("k", LogicalType::Int)])?;
            let mut t = Table::new(
                id,
                "dim1",
                schema,
                vec![Column::from_i64(LogicalType::Int, (0..100).collect())],
            )?;
            t.create_index(ColId::new(0))?;
            Ok(t)
        })
        .unwrap();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![ColumnDef::new("k", LogicalType::Int)])?;
            let mut t = Table::new(
                id,
                "dim2",
                schema,
                vec![Column::from_i64(LogicalType::Int, (0..10).collect())],
            )?;
            t.create_index(ColId::new(0))?;
            Ok(t)
        })
        .unwrap();
        db
    }

    fn star_query(db: &Database, dim1_filter: Option<i64>) -> Query {
        let mut qb = QueryBuilder::new();
        let f = qb.add_relation(db.table_id("fact").unwrap());
        let d1 = qb.add_relation(db.table_id("dim1").unwrap());
        let d2 = qb.add_relation(db.table_id("dim2").unwrap());
        qb.add_join(
            ColRef::new(f, ColId::new(0)),
            ColRef::new(d1, ColId::new(0)),
        );
        qb.add_join(
            ColRef::new(f, ColId::new(1)),
            ColRef::new(d2, ColId::new(0)),
        );
        if let Some(v) = dim1_filter {
            qb.add_predicate(Predicate::eq(d1, ColId::new(0), v));
        }
        qb.build()
    }

    fn setup(db: &Database) -> DatabaseStats {
        analyze_database(db, &AnalyzeOpts::default()).unwrap()
    }

    fn run_dp(
        db: &Database,
        stats: &DatabaseStats,
        q: &Query,
        g: &CardOverrides,
        left_deep: bool,
    ) -> (PhysicalPlan, SearchStats) {
        let mut est =
            CardinalityEstimator::new(db, stats, q, g, &CardEstConfig::default()).unwrap();
        plan_dp(
            db,
            q,
            &mut est,
            &CostModel::default(),
            &OperatorSet::default(),
            left_deep,
        )
        .unwrap()
    }

    #[test]
    fn plans_cover_all_relations() {
        let db = star_db();
        let stats = setup(&db);
        let q = star_query(&db, None);
        let g = CardOverrides::new();
        let (plan, st) = run_dp(&db, &stats, &q, &g, false);
        assert_eq!(plan.relset(), RelSet::first_n(3));
        assert_eq!(plan.num_joins(), 2);
        assert!(st.subsets >= 5); // 3 singletons + ≥2 join sets
        assert!(st.join_orders_considered > 0);
    }

    #[test]
    fn left_deep_mode_produces_left_deep_trees() {
        let db = star_db();
        let stats = setup(&db);
        let q = star_query(&db, None);
        let g = CardOverrides::new();
        let (plan, _) = run_dp(&db, &stats, &q, &g, true);
        assert!(plan.logical_tree().is_left_deep());
    }

    #[test]
    fn selective_filter_prefers_index_scan() {
        // A selective equality filter on the *large* fact table should use
        // its index; tiny dimension tables (1 page) stay on seq scans, as
        // in PostgreSQL.
        let db = star_db();
        let stats = setup(&db);
        let mut qb = QueryBuilder::new();
        let f = qb.add_relation(db.table_id("fact").unwrap());
        let d1 = qb.add_relation(db.table_id("dim1").unwrap());
        qb.add_join(
            ColRef::new(f, ColId::new(0)),
            ColRef::new(d1, ColId::new(0)),
        );
        qb.add_predicate(Predicate::eq(f, ColId::new(0), 5i64));
        let q = qb.build();
        let g = CardOverrides::new();
        let (plan, _) = run_dp(&db, &stats, &q, &g, false);
        let mut fact_access = None;
        plan.visit(&mut |n| {
            if let PhysicalPlan::Scan { rel, access, .. } = n {
                if *rel == RelId::new(0) {
                    fact_access = Some(*access);
                }
            }
        });
        // The fact side is either an index scan leaf or the inner of an
        // index-nested-loop join; both exploit the index. Accept an explicit
        // IndexScan or verify the plan contains an IndexNested join probing
        // the fact table.
        let mut uses_index = matches!(fact_access, Some(AccessPath::IndexScan { .. }));
        plan.visit(&mut |n| {
            if let PhysicalPlan::Join {
                algo: JoinAlgo::IndexNested,
                right,
                ..
            } = n
            {
                if right.relset().contains(RelId::new(0)) {
                    uses_index = true;
                }
            }
        });
        assert!(
            uses_index,
            "expected index use on fact:\n{}",
            plan.explain()
        );
    }

    #[test]
    fn single_relation_query_plans_as_scan() {
        let db = star_db();
        let stats = setup(&db);
        let mut qb = QueryBuilder::new();
        let f = qb.add_relation(db.table_id("fact").unwrap());
        qb.add_predicate(Predicate::gt(f, ColId::new(2), 9000i64));
        let q = qb.build();
        let g = CardOverrides::new();
        let (plan, st) = run_dp(&db, &stats, &q, &g, false);
        assert_eq!(plan.num_joins(), 0);
        assert_eq!(st.subsets, 1);
    }

    #[test]
    fn overrides_redirect_join_order() {
        // Tell the optimizer (via Γ) that fact ⋈ dim1 is enormous; it
        // should then join fact with dim2 first.
        let db = star_db();
        let stats = setup(&db);
        let q = star_query(&db, None);

        let g = CardOverrides::new();
        let (p_before, _) = run_dp(&db, &stats, &q, &g, false);

        let mut g2 = CardOverrides::new();
        let fact_dim1 = RelSet::single(RelId::new(0)).with(RelId::new(1));
        g2.insert(fact_dim1, 1.0e9);
        let (p_after, _) = run_dp(&db, &stats, &q, &g2, false);

        // The first join of the new plan must avoid {fact, dim1}.
        let first_join_sets = |p: &PhysicalPlan| -> Vec<RelSet> { p.logical_tree().join_sets() };
        assert!(first_join_sets(&p_after).iter().all(|s| *s != fact_dim1));
        // And the plans must differ structurally.
        assert!(!p_before.same_structure(&p_after));
    }

    #[test]
    fn deterministic_planning() {
        let db = star_db();
        let stats = setup(&db);
        let q = star_query(&db, Some(3));
        let g = CardOverrides::new();
        let (p1, _) = run_dp(&db, &stats, &q, &g, false);
        let (p2, _) = run_dp(&db, &stats, &q, &g, false);
        assert!(p1.same_structure(&p2));
        assert_eq!(p1.fingerprint(), p2.fingerprint());
    }

    /// Plan the pin's subtree with the stock DP, then lift it into a
    /// [`PinnedLeaf`] with an arbitrary exact count.
    fn make_pin(
        db: &Database,
        stats: &DatabaseStats,
        q: &Query,
        set: RelSet,
        rows: f64,
    ) -> PinnedLeaf {
        // Simplest faithful construction: plan the whole query, then carve
        // out the subtree covering `set` if present; otherwise hand-build a
        // left-deep hash join over the members.
        let g = CardOverrides::new();
        let (plan, _) = run_dp(db, stats, q, &g, false);
        let mut found: Option<PhysicalPlan> = None;
        plan.visit(&mut |n| {
            if n.relset() == set && found.is_none() {
                found = Some(n.clone());
            }
        });
        let plan = found.unwrap_or_else(|| {
            let mut rels = set.iter();
            let first = rels.next().unwrap();
            let mut acc = PhysicalPlan::Scan {
                rel: first,
                table: reopt_common::TableId::new(first.0),
                access: AccessPath::SeqScan,
                info: PlanNodeInfo::default(),
            };
            for rel in rels {
                let right = PhysicalPlan::Scan {
                    rel,
                    table: reopt_common::TableId::new(rel.0),
                    access: AccessPath::SeqScan,
                    info: PlanNodeInfo::default(),
                };
                let keys = join_keys(q, acc.relset(), RelSet::single(rel));
                acc = PhysicalPlan::Join {
                    algo: JoinAlgo::Hash,
                    left: Box::new(acc),
                    right: Box::new(right),
                    keys,
                    info: PlanNodeInfo::default(),
                };
            }
            acc
        });
        PinnedLeaf { set, plan, rows }
    }

    fn chain_db(k: usize, vals: i64, per: usize) -> Database {
        let mut db = Database::new();
        for t in 0..k {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![
                    ColumnDef::new("a", LogicalType::Int),
                    ColumnDef::new("b", LogicalType::Int),
                ])?;
                let mut data = Vec::new();
                for v in 0..vals {
                    data.extend(std::iter::repeat_n(v, per));
                }
                let mut tbl = Table::new(
                    id,
                    format!("c{t}"),
                    schema,
                    vec![
                        Column::from_i64(LogicalType::Int, data.clone()),
                        Column::from_i64(LogicalType::Int, data),
                    ],
                )?;
                tbl.create_index(ColId::new(0))?;
                tbl.create_index(ColId::new(1))?;
                Ok(tbl)
            })
            .unwrap();
        }
        db
    }

    fn chain_query(db: &Database, k: usize) -> Query {
        let mut qb = QueryBuilder::new();
        let rels: Vec<_> = (0..k)
            .map(|i| qb.add_relation(db.table_id(&format!("c{i}")).unwrap()))
            .collect();
        for w in rels.windows(2) {
            qb.add_join(
                ColRef::new(w[0], ColId::new(1)),
                ColRef::new(w[1], ColId::new(1)),
            );
        }
        qb.build()
    }

    fn run_pinned(
        db: &Database,
        stats: &DatabaseStats,
        q: &Query,
        g: &CardOverrides,
        pins: &[PinnedLeaf],
        left_deep: bool,
    ) -> (PhysicalPlan, SearchStats) {
        let mut est =
            CardinalityEstimator::new(db, stats, q, g, &CardEstConfig::default()).unwrap();
        let mut memo = PlanMemo::new();
        plan_dp_pinned(
            db,
            q,
            &mut est,
            &CostModel::default(),
            &OperatorSet::default(),
            left_deep,
            &mut memo,
            pins,
        )
        .unwrap()
    }

    /// Every node of `plan` must contain each pin entirely or avoid it
    /// entirely, and the pin itself must appear verbatim.
    fn assert_pins_atomic(plan: &PhysicalPlan, pins: &[PinnedLeaf]) {
        for p in pins {
            let mut found = false;
            plan.visit(&mut |n| {
                let set = n.relset();
                // A node may contain the pin (ancestor), avoid it
                // (disjoint remainder), or live inside it (the pinned
                // subtree's own nodes); it must never straddle it.
                assert!(
                    p.set.is_subset_of(set) || p.set.is_disjoint(set) || set.is_subset_of(p.set),
                    "node {set} straddles pin {}:\n{}",
                    p.set,
                    plan.explain()
                );
                if set == p.set {
                    assert!(
                        n.same_structure(&p.plan),
                        "pin {} was re-planned:\n{}",
                        p.set,
                        plan.explain()
                    );
                    found = true;
                }
            });
            assert!(
                found,
                "pin {} missing from plan:\n{}",
                p.set,
                plan.explain()
            );
        }
    }

    #[test]
    fn pinned_leaves_are_atomic_and_verbatim() {
        let db = chain_db(4, 50, 10);
        let stats = setup(&db);
        let q = chain_query(&db, 4);
        let pin = make_pin(&db, &stats, &q, rs_of(&[0, 1]), 123.0);
        let mut g = CardOverrides::new();
        g.insert_exact(rs_of(&[0, 1]), 123.0);
        for left_deep in [false, true] {
            let (plan, _) = run_pinned(&db, &stats, &q, &g, std::slice::from_ref(&pin), left_deep);
            assert_eq!(plan.relset(), RelSet::first_n(4));
            assert_pins_atomic(&plan, std::slice::from_ref(&pin));
        }
    }

    #[test]
    fn pinned_plan_avoids_poisoned_alternatives() {
        // Pin {0,1} with a tiny exact count while claiming {1,2} (the
        // plan that would split the pin) is enormous: the chosen plan
        // builds on the pin regardless.
        let db = chain_db(4, 50, 10);
        let stats = setup(&db);
        let q = chain_query(&db, 4);
        let pin = make_pin(&db, &stats, &q, rs_of(&[0, 1]), 1.0);
        let mut g = CardOverrides::new();
        g.insert_exact(rs_of(&[0, 1]), 1.0);
        g.insert(rs_of(&[1, 2]), 1e9);
        let (plan, _) = run_pinned(&db, &stats, &q, &g, std::slice::from_ref(&pin), false);
        assert_pins_atomic(&plan, &[pin]);
        // {1,2} straddles the pin, so it cannot appear even though Γ
        // mentions it.
        plan.visit(&mut |n| assert_ne!(n.relset(), rs_of(&[1, 2])));
    }

    #[test]
    fn multiple_disjoint_pins_all_survive() {
        let db = chain_db(5, 50, 10);
        let stats = setup(&db);
        let q = chain_query(&db, 5);
        let pins = vec![
            make_pin(&db, &stats, &q, rs_of(&[0, 1]), 40.0),
            make_pin(&db, &stats, &q, rs_of(&[3, 4]), 7.0),
        ];
        let mut g = CardOverrides::new();
        g.insert_exact(rs_of(&[0, 1]), 40.0);
        g.insert_exact(rs_of(&[3, 4]), 7.0);
        let (plan, _) = run_pinned(&db, &stats, &q, &g, &pins, false);
        assert_pins_atomic(&plan, &pins);
    }

    #[test]
    fn stale_straddling_memo_entries_are_ignored() {
        // First plan without pins (fills the memo with entries that split
        // {1,2} freely), then invalidate supersets of the new pin and
        // re-plan pinned — the stale straddlers must not leak back in.
        let db = chain_db(4, 50, 10);
        let stats = setup(&db);
        let q = chain_query(&db, 4);
        let g0 = CardOverrides::new();
        let mut est =
            CardinalityEstimator::new(&db, &stats, &q, &g0, &CardEstConfig::default()).unwrap();
        let mut memo = PlanMemo::new();
        let _ = plan_dp_incremental(
            &db,
            &q,
            &mut est,
            &CostModel::default(),
            &OperatorSet::default(),
            false,
            &mut memo,
        )
        .unwrap();

        let pin = make_pin(&db, &stats, &q, rs_of(&[1, 2]), 9.0);
        memo.invalidate_supersets(&[pin.set]);
        let mut g = CardOverrides::new();
        g.insert_exact(pin.set, 9.0);
        let mut est =
            CardinalityEstimator::new(&db, &stats, &q, &g, &CardEstConfig::default()).unwrap();
        let (plan, stats_out) = plan_dp_pinned(
            &db,
            &q,
            &mut est,
            &CostModel::default(),
            &OperatorSet::default(),
            false,
            &mut memo,
            std::slice::from_ref(&pin),
        )
        .unwrap();
        assert_pins_atomic(&plan, &[pin]);
        // Untouched disjoint entries were reused, not re-planned.
        assert!(stats_out.subsets_reused > 0);
    }

    fn rs_of(ids: &[u32]) -> RelSet {
        ids.iter().map(|&i| RelId::new(i)).collect()
    }

    #[test]
    fn no_cross_products_in_plans() {
        let db = star_db();
        let stats = setup(&db);
        let q = star_query(&db, None);
        let g = CardOverrides::new();
        let (plan, _) = run_dp(&db, &stats, &q, &g, false);
        // Every join node must have at least one key.
        plan.visit(&mut |n| {
            if let PhysicalPlan::Join { keys, .. } = n {
                assert!(!keys.is_empty());
            }
        });
    }
}
