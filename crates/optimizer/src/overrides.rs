//! Γ — the store of sampling-validated cardinalities.
//!
//! Algorithm 1 maintains Γ, "the sampling-based cardinality estimates for
//! joins that have been validated". Within one query, a validated join
//! result is identified by the set of base relations it covers (its local
//! predicates are fixed), so Γ is a map `RelSet → rows`. The optimizer's
//! cardinality estimator consults Γ *before* its native statistics and
//! accepts the entry unconditionally (§7 discusses this design choice).

//! Mid-query re-optimization extends Γ with **exact** entries: when the
//! executor suspends at a pipeline breaker it has *observed* the true
//! cardinality of every completed node — a count, not an estimate, with no
//! sampling scale-up (scale 1.0). Exact entries take precedence over
//! sampled ones: [`CardOverrides::insert_exact`] overwrites any sampled
//! value for the same set, while the sampled paths
//! ([`CardOverrides::insert`], [`CardOverrides::merge`]) silently skip
//! sets already known exactly — an estimate must never displace a fact.

use reopt_common::RelSet;
use reopt_storage::DataVersion;
use std::collections::{BTreeMap, BTreeSet};

/// Validated cardinalities for one query (the paper's Γ).
///
/// Stored in ordered maps: Γ is iterated when merging Δ and when reports
/// and caches walk the validated sets, and an unordered walk there is
/// exactly the class of silent determinism hazard rule R1 of `reopt-lint`
/// exists to catch. Γ is small (one entry per validated join subset), so
/// the `BTreeMap` costs nothing measurable next to a sample run.
#[derive(Debug, Clone, Default)]
pub struct CardOverrides {
    map: BTreeMap<RelSet, f64>,
    /// Sets whose entry is an exact observed count, not a sampled
    /// estimate. Invariant: `exact ⊆ map.keys()`.
    exact: BTreeSet<RelSet>,
    /// The [`DataVersion`] new entries are observed at.
    version: DataVersion,
    /// Per-set observation stamp. Invariant: `observed.keys() == map.keys()`.
    observed: BTreeMap<RelSet, DataVersion>,
}

impl CardOverrides {
    /// Empty Γ (round 1 of Algorithm 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// The [`DataVersion`] subsequently recorded entries are stamped with.
    pub fn data_version(&self) -> DataVersion {
        self.version
    }

    /// Stamp subsequently recorded entries as observed at `version`
    /// (typically the sample store's
    /// `data_version` — the data state the dry-runs actually ran over).
    /// Existing entries keep their stamps; see [`CardOverrides::rebase`].
    pub fn set_data_version(&mut self, version: DataVersion) {
        self.version = version;
    }

    /// The [`DataVersion`] `set`'s entry was observed at, if present.
    pub fn observed_at(&self, set: RelSet) -> Option<DataVersion> {
        self.observed.get(&set).copied()
    }

    /// The validated row count for exactly `set`, if present.
    pub fn get(&self, set: RelSet) -> Option<f64> {
        self.map.get(&set).copied()
    }

    /// Whether `set` has been validated.
    pub fn contains(&self, set: RelSet) -> bool {
        self.map.contains_key(&set)
    }

    /// Record a validated cardinality. Overwrites an existing sampled
    /// entry (the newest sample run wins; in practice re-validation of the
    /// same set yields the same number because sampling is deterministic
    /// per query). A set already known *exactly* is left untouched: a
    /// sampled estimate never displaces an observed count.
    pub fn insert(&mut self, set: RelSet, rows: f64) {
        if self.exact.contains(&set) {
            return;
        }
        self.map.insert(set, rows.max(0.0));
        self.observed.insert(set, self.version);
    }

    /// Record an **exact observed** cardinality (mid-query
    /// re-optimization): the executor counted `rows` output tuples for
    /// `set` on the full database, so the entry carries no sampling scale
    /// (scale 1.0) and overrides any sampled estimate for the same set.
    /// Exact entries are permanent for the life of this Γ — later sampled
    /// inserts/merges cannot touch them.
    pub fn insert_exact(&mut self, set: RelSet, rows: f64) {
        self.map.insert(set, rows.max(0.0));
        self.exact.insert(set);
        self.observed.insert(set, self.version);
    }

    /// Whether `set`'s entry is an exact observed count.
    pub fn is_exact(&self, set: RelSet) -> bool {
        self.exact.contains(&set)
    }

    /// Number of exact observed entries.
    pub fn exact_len(&self) -> usize {
        self.exact.len()
    }

    /// Γ ← Γ ∪ Δ (line 10 of Algorithm 1). Returns the number of sets that
    /// were not previously present — zero means Δ added nothing new, the
    /// premise of Theorem 1's convergence condition. Δ carries sampled
    /// estimates, so sets this Γ already knows exactly are skipped (they
    /// count as "previously present", never as fresh).
    pub fn merge(&mut self, delta: &CardOverrides) -> usize {
        let mut fresh = 0;
        for (&set, &rows) in &delta.map {
            if self.exact.contains(&set) {
                continue;
            }
            if self.map.insert(set, rows).is_none() {
                fresh += 1;
            }
            // Δ's entries keep the stamp of the data they were derived on.
            let stamp = delta.observed_at(set).unwrap_or(delta.version);
            self.observed.insert(set, stamp);
        }
        fresh
    }

    /// The base data moved to `live`: walk Γ and retire entries observed
    /// on older data. Exact counts are *demoted* to sampled estimates —
    /// they were facts about the previous data state, so they may stand in
    /// as estimates until re-validated, but must no longer outrank fresh
    /// sample runs. Already-sampled stale entries are *evicted* outright.
    /// A demoted entry keeps its old stamp, so it survives at most one
    /// rebase before eviction. Returns `(demoted, evicted)`.
    pub fn rebase(&mut self, live: DataVersion) -> (usize, usize) {
        self.version = live;
        let stale: Vec<RelSet> = self
            .observed
            .iter()
            .filter(|&(_, &v)| v < live)
            .map(|(&s, _)| s)
            .collect();
        let (mut demoted, mut evicted) = (0, 0);
        for set in stale {
            if self.exact.remove(&set) {
                demoted += 1;
            } else {
                self.map.remove(&set);
                self.observed.remove(&set);
                evicted += 1;
            }
        }
        (demoted, evicted)
    }

    /// Number of validated sets.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been validated yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate the validated (set, rows) pairs in ascending [`RelSet`]
    /// order — deterministic across runs and processes.
    pub fn iter(&self) -> impl Iterator<Item = (RelSet, f64)> + '_ {
        self.map.iter().map(|(&s, &r)| (s, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::RelId;

    fn rs(ids: &[u32]) -> RelSet {
        ids.iter().map(|&i| RelId::new(i)).collect()
    }

    #[test]
    fn insert_and_lookup() {
        let mut g = CardOverrides::new();
        assert!(g.is_empty());
        g.insert(rs(&[0, 1]), 1234.0);
        assert_eq!(g.get(rs(&[0, 1])), Some(1234.0));
        assert!(g.contains(rs(&[0, 1])));
        assert!(!g.contains(rs(&[0, 2])));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn negative_rows_clamped_to_zero() {
        let mut g = CardOverrides::new();
        g.insert(rs(&[0]), -5.0);
        assert_eq!(g.get(rs(&[0])), Some(0.0));
    }

    #[test]
    fn merge_counts_only_new_sets() {
        let mut g = CardOverrides::new();
        g.insert(rs(&[0, 1]), 10.0);

        let mut d = CardOverrides::new();
        d.insert(rs(&[0, 1]), 12.0); // update, not new
        d.insert(rs(&[1, 2]), 7.0); // new
        let fresh = g.merge(&d);
        assert_eq!(fresh, 1);
        assert_eq!(g.len(), 2);
        // Newest value wins.
        assert_eq!(g.get(rs(&[0, 1])), Some(12.0));
    }

    #[test]
    fn merge_of_covered_delta_adds_nothing() {
        // Theorem 1's premise: when Δ ⊆ Γ (set-wise), Γ is unchanged.
        let mut g = CardOverrides::new();
        g.insert(rs(&[0, 1]), 10.0);
        g.insert(rs(&[0, 1, 2]), 100.0);
        let mut d = CardOverrides::new();
        d.insert(rs(&[0, 1]), 10.0);
        assert_eq!(g.merge(&d), 0);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn exact_entries_override_and_survive_sampled_writes() {
        let mut g = CardOverrides::new();
        g.insert(rs(&[0, 1]), 10.0);
        assert!(!g.is_exact(rs(&[0, 1])));

        // Exact observation overrides the sampled estimate...
        g.insert_exact(rs(&[0, 1]), 42.0);
        assert_eq!(g.get(rs(&[0, 1])), Some(42.0));
        assert!(g.is_exact(rs(&[0, 1])));
        assert_eq!(g.exact_len(), 1);

        // ...and later sampled writes cannot displace it.
        g.insert(rs(&[0, 1]), 7.0);
        assert_eq!(g.get(rs(&[0, 1])), Some(42.0));
        let mut d = CardOverrides::new();
        d.insert(rs(&[0, 1]), 9.0);
        d.insert(rs(&[1, 2]), 5.0);
        let fresh = g.merge(&d);
        assert_eq!(fresh, 1, "only the genuinely new set counts");
        assert_eq!(g.get(rs(&[0, 1])), Some(42.0));
        assert_eq!(g.get(rs(&[1, 2])), Some(5.0));
    }

    #[test]
    fn exact_reobservation_updates_in_place() {
        // Re-observing a set (e.g. the same breaker after a stats refresh)
        // keeps the newest exact count.
        let mut g = CardOverrides::new();
        g.insert_exact(rs(&[0]), 3.0);
        g.insert_exact(rs(&[0]), 4.0);
        assert_eq!(g.get(rs(&[0])), Some(4.0));
        assert_eq!(g.exact_len(), 1);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn entries_are_stamped_with_the_current_data_version() {
        let mut g = CardOverrides::new();
        g.insert(rs(&[0, 1]), 10.0);
        assert_eq!(g.observed_at(rs(&[0, 1])), Some(DataVersion::ZERO));
        g.set_data_version(DataVersion::new(3));
        g.insert_exact(rs(&[1, 2]), 5.0);
        assert_eq!(g.observed_at(rs(&[1, 2])), Some(DataVersion::new(3)));
        assert_eq!(g.data_version(), DataVersion::new(3));
        assert_eq!(g.observed_at(rs(&[7])), None);
    }

    #[test]
    fn merge_carries_delta_observation_stamps() {
        let mut d = CardOverrides::new();
        d.set_data_version(DataVersion::new(2));
        d.insert(rs(&[0, 1]), 10.0);
        let mut g = CardOverrides::new();
        g.merge(&d);
        assert_eq!(g.observed_at(rs(&[0, 1])), Some(DataVersion::new(2)));
    }

    #[test]
    fn rebase_demotes_stale_exact_and_evicts_stale_sampled() {
        let mut g = CardOverrides::new();
        g.set_data_version(DataVersion::new(1));
        g.insert(rs(&[0, 1]), 10.0); // sampled at v1
        g.insert_exact(rs(&[1, 2]), 42.0); // exact at v1
        g.set_data_version(DataVersion::new(2));
        g.insert(rs(&[2, 3]), 7.0); // sampled at v2: current

        let (demoted, evicted) = g.rebase(DataVersion::new(2));
        assert_eq!((demoted, evicted), (1, 1));
        // The stale sampled entry is gone…
        assert!(!g.contains(rs(&[0, 1])));
        // …the stale exact entry survives as a mere estimate…
        assert_eq!(g.get(rs(&[1, 2])), Some(42.0));
        assert!(!g.is_exact(rs(&[1, 2])));
        // …so a fresh sample run can now overwrite it…
        g.insert(rs(&[1, 2]), 40.0);
        assert_eq!(g.get(rs(&[1, 2])), Some(40.0));
        // …and the current-version entry is untouched.
        assert_eq!(g.get(rs(&[2, 3])), Some(7.0));

        // A demoted-but-not-revalidated entry dies at the next rebase.
        let mut h = CardOverrides::new();
        h.set_data_version(DataVersion::new(1));
        h.insert_exact(rs(&[0]), 3.0);
        h.rebase(DataVersion::new(2));
        let (demoted, evicted) = h.rebase(DataVersion::new(3));
        assert_eq!((demoted, evicted), (0, 1));
        assert!(h.is_empty());
    }

    #[test]
    fn iteration_covers_all_entries() {
        let mut g = CardOverrides::new();
        g.insert(rs(&[0]), 1.0);
        g.insert(rs(&[1]), 2.0);
        let mut got: Vec<(RelSet, f64)> = g.iter().collect();
        got.sort_by_key(|(s, _)| *s);
        assert_eq!(got, vec![(rs(&[0]), 1.0), (rs(&[1]), 2.0)]);
    }
}
