//! Γ — the store of sampling-validated cardinalities.
//!
//! Algorithm 1 maintains Γ, "the sampling-based cardinality estimates for
//! joins that have been validated". Within one query, a validated join
//! result is identified by the set of base relations it covers (its local
//! predicates are fixed), so Γ is a map `RelSet → rows`. The optimizer's
//! cardinality estimator consults Γ *before* its native statistics and
//! accepts the entry unconditionally (§7 discusses this design choice).

use reopt_common::{FxHashMap, RelSet};

/// Validated cardinalities for one query (the paper's Γ).
#[derive(Debug, Clone, Default)]
pub struct CardOverrides {
    map: FxHashMap<RelSet, f64>,
}

impl CardOverrides {
    /// Empty Γ (round 1 of Algorithm 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// The validated row count for exactly `set`, if present.
    pub fn get(&self, set: RelSet) -> Option<f64> {
        self.map.get(&set).copied()
    }

    /// Whether `set` has been validated.
    pub fn contains(&self, set: RelSet) -> bool {
        self.map.contains_key(&set)
    }

    /// Record a validated cardinality. Overwrites an existing entry (the
    /// newest sample run wins; in practice re-validation of the same set
    /// yields the same number because sampling is deterministic per query).
    pub fn insert(&mut self, set: RelSet, rows: f64) {
        self.map.insert(set, rows.max(0.0));
    }

    /// Γ ← Γ ∪ Δ (line 10 of Algorithm 1). Returns the number of sets that
    /// were not previously present — zero means Δ added nothing new, the
    /// premise of Theorem 1's convergence condition.
    pub fn merge(&mut self, delta: &CardOverrides) -> usize {
        let mut fresh = 0;
        for (&set, &rows) in &delta.map {
            if self.map.insert(set, rows).is_none() {
                fresh += 1;
            }
        }
        fresh
    }

    /// Number of validated sets.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been validated yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate the validated (set, rows) pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (RelSet, f64)> + '_ {
        self.map.iter().map(|(&s, &r)| (s, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::RelId;

    fn rs(ids: &[u32]) -> RelSet {
        ids.iter().map(|&i| RelId::new(i)).collect()
    }

    #[test]
    fn insert_and_lookup() {
        let mut g = CardOverrides::new();
        assert!(g.is_empty());
        g.insert(rs(&[0, 1]), 1234.0);
        assert_eq!(g.get(rs(&[0, 1])), Some(1234.0));
        assert!(g.contains(rs(&[0, 1])));
        assert!(!g.contains(rs(&[0, 2])));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn negative_rows_clamped_to_zero() {
        let mut g = CardOverrides::new();
        g.insert(rs(&[0]), -5.0);
        assert_eq!(g.get(rs(&[0])), Some(0.0));
    }

    #[test]
    fn merge_counts_only_new_sets() {
        let mut g = CardOverrides::new();
        g.insert(rs(&[0, 1]), 10.0);

        let mut d = CardOverrides::new();
        d.insert(rs(&[0, 1]), 12.0); // update, not new
        d.insert(rs(&[1, 2]), 7.0); // new
        let fresh = g.merge(&d);
        assert_eq!(fresh, 1);
        assert_eq!(g.len(), 2);
        // Newest value wins.
        assert_eq!(g.get(rs(&[0, 1])), Some(12.0));
    }

    #[test]
    fn merge_of_covered_delta_adds_nothing() {
        // Theorem 1's premise: when Δ ⊆ Γ (set-wise), Γ is unchanged.
        let mut g = CardOverrides::new();
        g.insert(rs(&[0, 1]), 10.0);
        g.insert(rs(&[0, 1, 2]), 100.0);
        let mut d = CardOverrides::new();
        d.insert(rs(&[0, 1]), 10.0);
        assert_eq!(g.merge(&d), 0);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn iteration_covers_all_entries() {
        let mut g = CardOverrides::new();
        g.insert(rs(&[0]), 1.0);
        g.insert(rs(&[1]), 2.0);
        let mut got: Vec<(RelSet, f64)> = g.iter().collect();
        got.sort_by_key(|(s, _)| *s);
        assert_eq!(got, vec![(rs(&[0]), 1.0), (rs(&[1]), 2.0)]);
    }
}
