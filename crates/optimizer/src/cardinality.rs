//! Cardinality estimation: native statistics (histograms + MCVs + AVI)
//! overridden by Γ where sampling has validated a join.
//!
//! The estimate for a relation set `S` is order-independent:
//!
//! ```text
//! rows(S) = Γ(S)                                  if S ∈ Γ
//!         = Π_{r∈S} filtered(r) × Π_{e ⊆ S} sel(e)  otherwise
//! ```
//!
//! where `filtered(r)` applies the relation's local predicates under the
//! attribute-value-independence assumption and `sel(e)` is the equi-join
//! selectivity of each join edge inside `S`. Keying estimates by the *set*
//! (not the join order) matches how the paper's Γ is defined and keeps the
//! DP's estimates mutually consistent.

use crate::overrides::CardOverrides;
use reopt_common::{Error, FxHashMap, RelId, RelSet, Result};
use reopt_plan::{CmpOp, JoinGraph, Predicate, Query};
use reopt_stats::column_stats::MIN_SELECTIVITY;
use reopt_stats::{eq_join_selectivity, DatabaseStats};
use reopt_storage::Database;

/// Estimator configuration.
#[derive(Debug, Clone)]
pub struct CardEstConfig {
    /// Use the MCV-join refinement for join selectivity (PostgreSQL-style).
    /// When false, fall back to the pure System-R `1/max(nd)` rule — the
    /// "commercial system B" profile uses this.
    pub mcv_join_refinement: bool,
}

impl Default for CardEstConfig {
    fn default() -> Self {
        CardEstConfig {
            mcv_join_refinement: true,
        }
    }
}

/// Per-query cardinality estimator.
#[derive(Debug)]
pub struct CardinalityEstimator<'a> {
    query: &'a Query,
    stats: &'a DatabaseStats,
    overrides: &'a CardOverrides,
    graph: JoinGraph,
    /// Unfiltered base-table rows per relation.
    table_rows: Vec<f64>,
    /// Rows surviving local predicates per relation (native estimate).
    filtered: Vec<f64>,
    /// Selectivity per join edge, aligned with `query.joins`.
    edge_sel: Vec<f64>,
    /// Memoized set estimates.
    cache: FxHashMap<RelSet, f64>,
}

impl<'a> CardinalityEstimator<'a> {
    /// Build the estimator: pre-computes filtered cardinalities and edge
    /// selectivities from statistics.
    pub fn new(
        db: &'a Database,
        stats: &'a DatabaseStats,
        query: &'a Query,
        overrides: &'a CardOverrides,
        config: &CardEstConfig,
    ) -> Result<Self> {
        let n = query.num_relations();
        let mut table_rows = Vec::with_capacity(n);
        let mut filtered = Vec::with_capacity(n);
        for i in 0..n {
            let rel = RelId::from(i);
            let table_id = query.table_of(rel)?;
            let table = db.table(table_id)?;
            let trows = table.row_count() as f64;
            let mut sel = 1.0;
            for p in query.local_predicates(rel) {
                sel *= local_selectivity(db, stats, query, p)?;
            }
            table_rows.push(trows);
            filtered.push((trows * sel).max(0.0));
        }

        let graph = query.join_graph();
        let mut edge_sel = Vec::with_capacity(query.joins.len());
        for j in &query.joins {
            let ls = stats.column(query.table_of(j.left_rel)?, j.left_col)?;
            let rs = stats.column(query.table_of(j.right_rel)?, j.right_col)?;
            let lrows = filtered[j.left_rel.index()];
            let rrows = filtered[j.right_rel.index()];
            let sel = if config.mcv_join_refinement {
                eq_join_selectivity(ls, rs, lrows, rrows)
            } else {
                system_r_selectivity(ls, rs, lrows, rrows)
            };
            edge_sel.push(sel);
        }

        Ok(CardinalityEstimator {
            query,
            stats,
            overrides,
            graph,
            table_rows,
            filtered,
            edge_sel,
            cache: FxHashMap::default(),
        })
    }

    /// Unfiltered row count of relation `rel`'s base table.
    pub fn table_rows(&self, rel: RelId) -> f64 {
        self.table_rows[rel.index()]
    }

    /// Native (statistics-based) estimate of rows surviving `rel`'s local
    /// predicates — not consulting Γ.
    pub fn native_filtered_rows(&self, rel: RelId) -> f64 {
        self.filtered[rel.index()]
    }

    /// Selectivity attached to join edge `idx` (aligned with
    /// `query.joins`).
    pub fn edge_selectivity(&self, idx: usize) -> f64 {
        self.edge_sel[idx]
    }

    /// The join graph the estimator reasons over.
    pub fn graph(&self) -> &JoinGraph {
        &self.graph
    }

    /// Estimated rows of the join result covering exactly `set`
    /// (Γ-overridden when validated).
    pub fn rows(&mut self, set: RelSet) -> f64 {
        if let Some(v) = self.cache.get(&set) {
            return *v;
        }
        let v = self.compute_rows(set);
        self.cache.insert(set, v);
        v
    }

    fn compute_rows(&self, set: RelSet) -> f64 {
        if let Some(v) = self.overrides.get(set) {
            return v.max(0.0);
        }
        if set.len() <= 1 {
            return match set.min_rel() {
                Some(r) => self.filtered[r.index()].max(0.0),
                None => 0.0,
            };
        }
        let mut rows: f64 = set.iter().map(|r| self.filtered[r.index()]).product();
        for (i, j) in self.query.joins.iter().enumerate() {
            if set.contains(j.left_rel) && set.contains(j.right_rel) {
                rows *= self.edge_sel[i];
            }
        }
        rows.max(MIN_SELECTIVITY)
    }

    /// Stats handle (used by access-path logic).
    pub fn stats(&self) -> &DatabaseStats {
        self.stats
    }
}

/// Selectivity of one local predicate from column statistics.
pub fn local_selectivity(
    db: &Database,
    stats: &DatabaseStats,
    query: &Query,
    p: &Predicate,
) -> Result<f64> {
    let table_id = query.table_of(p.rel)?;
    let col_stats = stats.column(table_id, p.col)?;
    let column = db.table(table_id)?.column(p.col)?;
    let Some(c1) = column.encode_constant(&p.value)? else {
        // Constant absent from the dictionary: nothing matches.
        return Ok(MIN_SELECTIVITY);
    };
    let sel = match p.op {
        CmpOp::Eq => col_stats.eq_selectivity(c1),
        CmpOp::Ne => col_stats.ne_selectivity(c1),
        CmpOp::Lt => col_stats.lt_selectivity(c1),
        CmpOp::Le => col_stats.le_selectivity(c1),
        CmpOp::Gt => col_stats.gt_selectivity(c1),
        CmpOp::Ge => col_stats.ge_selectivity(c1),
        CmpOp::Between => {
            let c2 = p
                .value2
                .as_ref()
                .ok_or_else(|| Error::invalid("BETWEEN without upper bound"))?;
            let Some(c2) = column.encode_constant(c2)? else {
                return Ok(MIN_SELECTIVITY);
            };
            col_stats.between_selectivity(c1, c2)
        }
    };
    Ok(sel)
}

/// The pure System-R join rule: `(1-nf1)(1-nf2) / max(nd1, nd2)` with the
/// distinct counts clamped by input cardinalities.
fn system_r_selectivity(
    s1: &reopt_stats::ColumnStats,
    s2: &reopt_stats::ColumnStats,
    rows1: f64,
    rows2: f64,
) -> f64 {
    let clamp = |nd: f64, rows: f64| {
        if rows >= 1.0 && nd > rows {
            rows
        } else {
            nd.max(1.0)
        }
    };
    let nd1 = clamp(s1.n_distinct, rows1);
    let nd2 = clamp(s2.n_distinct, rows2);
    ((1.0 - s1.null_frac) * (1.0 - s2.null_frac) / nd1.max(nd2)).max(MIN_SELECTIVITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_common::{ColId, TableId};
    use reopt_plan::query::ColRef;
    use reopt_plan::QueryBuilder;
    use reopt_stats::{analyze_database, AnalyzeOpts};
    use reopt_storage::{Column, ColumnDef, LogicalType, Table, TableSchema};

    /// Three OTT-style relations R_k(A, B) with B = A, `vals` distinct
    /// values × `per` rows each.
    fn ott_db(k: usize, vals: i64, per: usize) -> Database {
        let mut db = Database::new();
        for t in 0..k {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![
                    ColumnDef::new("a", LogicalType::Int),
                    ColumnDef::new("b", LogicalType::Int),
                ])?;
                let mut data = Vec::with_capacity(vals as usize * per);
                for v in 0..vals {
                    data.extend(std::iter::repeat_n(v, per));
                }
                Table::new(
                    id,
                    format!("r{t}"),
                    schema,
                    vec![
                        Column::from_i64(LogicalType::Int, data.clone()),
                        Column::from_i64(LogicalType::Int, data),
                    ],
                )
            })
            .unwrap();
        }
        db
    }

    fn ott_query(db: &Database, k: usize, consts: &[i64]) -> Query {
        let mut qb = QueryBuilder::new();
        let rels: Vec<RelId> = (0..k).map(|i| qb.add_relation(TableId::from(i))).collect();
        for (i, &r) in rels.iter().enumerate() {
            qb.add_predicate(Predicate::eq(r, ColId::new(0), consts[i]));
        }
        for w in rels.windows(2) {
            qb.add_join(
                ColRef::new(w[0], ColId::new(1)),
                ColRef::new(w[1], ColId::new(1)),
            );
        }
        let _ = db;
        qb.build()
    }

    #[test]
    fn filtered_rows_follow_eq_selectivity() {
        let db = ott_db(1, 200, 10); // 2000 rows, 200 distinct
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let q = ott_query(&db, 1, &[5]);
        let g = CardOverrides::new();
        let est =
            CardinalityEstimator::new(&db, &stats, &q, &g, &CardEstConfig::default()).unwrap();
        // 2000 × (1/200) = 10.
        let f = est.native_filtered_rows(RelId::new(0));
        assert!((f - 10.0).abs() < 0.5, "got {f}");
        assert_eq!(est.table_rows(RelId::new(0)), 2000.0);
    }

    #[test]
    fn ott_estimate_is_blind_to_emptiness() {
        // Lemma 4 / §4.2.2: the native estimate is identical whether the
        // constants make the query empty or not.
        let db = ott_db(3, 200, 10);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let g = CardOverrides::new();

        let q_nonempty = ott_query(&db, 3, &[0, 0, 0]);
        let q_empty = ott_query(&db, 3, &[0, 1, 0]);
        let mut e1 =
            CardinalityEstimator::new(&db, &stats, &q_nonempty, &g, &CardEstConfig::default())
                .unwrap();
        let mut e2 =
            CardinalityEstimator::new(&db, &stats, &q_empty, &g, &CardEstConfig::default())
                .unwrap();
        let all = RelSet::first_n(3);
        let r1 = e1.rows(all);
        let r2 = e2.rows(all);
        assert!((r1 - r2).abs() < 1e-9, "estimates differ: {r1} vs {r2}");
        // And both are tiny compared to the true non-empty size 10³ = 1000.
        assert!(r1 < 100.0, "estimate {r1}");
    }

    #[test]
    fn overrides_take_precedence() {
        let db = ott_db(2, 200, 10);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let q = ott_query(&db, 2, &[0, 0]);
        let mut g = CardOverrides::new();
        let pair = RelSet::first_n(2);
        g.insert(pair, 12345.0);
        g.insert(RelSet::single(RelId::new(0)), 42.0);
        let mut est =
            CardinalityEstimator::new(&db, &stats, &q, &g, &CardEstConfig::default()).unwrap();
        assert_eq!(est.rows(pair), 12345.0);
        assert_eq!(est.rows(RelSet::single(RelId::new(0))), 42.0);
        // Un-overridden singleton still native.
        let f = est.rows(RelSet::single(RelId::new(1)));
        assert!((f - 10.0).abs() < 0.5);
    }

    #[test]
    fn estimates_are_join_order_independent() {
        let db = ott_db(3, 100, 5);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let q = ott_query(&db, 3, &[0, 0, 0]);
        let g = CardOverrides::new();
        let mut est =
            CardinalityEstimator::new(&db, &stats, &q, &g, &CardEstConfig::default()).unwrap();
        // rows({0,1,2}) must not depend on how we'd parenthesize the join.
        let all = RelSet::first_n(3);
        let v1 = est.rows(all);
        let v2 = est.rows(all); // cached path
        assert_eq!(v1, v2);
        assert!(v1 > 0.0);
    }

    #[test]
    fn system_r_vs_mcv_refinement_differ_on_skew() {
        // Build skewed join columns so MCV refinement has something to
        // refine: value 0 dominates both sides.
        let mut db = Database::new();
        for name in ["s1", "s2"] {
            db.add_table_with(|id| {
                let schema = TableSchema::new(vec![
                    ColumnDef::new("a", LogicalType::Int),
                    ColumnDef::new("b", LogicalType::Int),
                ])?;
                let mut data = vec![0i64; 5000];
                data.extend(0..1000);
                Table::new(
                    id,
                    name,
                    schema,
                    vec![
                        Column::from_i64(LogicalType::Int, data.clone()),
                        Column::from_i64(LogicalType::Int, data),
                    ],
                )
            })
            .unwrap();
        }
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let mut qb = QueryBuilder::new();
        let a = qb.add_relation(TableId::new(0));
        let b = qb.add_relation(TableId::new(1));
        qb.add_join(ColRef::new(a, ColId::new(1)), ColRef::new(b, ColId::new(1)));
        let q = qb.build();
        let g = CardOverrides::new();
        let mut with_mcv = CardinalityEstimator::new(
            &db,
            &stats,
            &q,
            &g,
            &CardEstConfig {
                mcv_join_refinement: true,
            },
        )
        .unwrap();
        let mut without = CardinalityEstimator::new(
            &db,
            &stats,
            &q,
            &g,
            &CardEstConfig {
                mcv_join_refinement: false,
            },
        )
        .unwrap();
        let pair = RelSet::first_n(2);
        let refined = with_mcv.rows(pair);
        let plain = without.rows(pair);
        // True size: 5001² (zeros) + 1000 others ≈ 2.5e7. The refined
        // estimate must be far closer.
        let truth = 5001.0f64 * 5001.0 + 1000.0;
        assert!(
            (refined - truth).abs() < truth * 0.2,
            "refined {refined} vs truth {truth}"
        );
        assert!(plain < truth * 0.01, "plain {plain} should underestimate");
    }

    #[test]
    fn dictionary_miss_selectivity_is_minimal() {
        let mut db = Database::new();
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![ColumnDef::new("t", LogicalType::Dict)])?;
            Table::new(id, "d", schema, vec![Column::from_strings(&["x", "y"])])
        })
        .unwrap();
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let mut qb = QueryBuilder::new();
        let r = qb.add_relation(TableId::new(0));
        qb.add_predicate(Predicate::eq(r, ColId::new(0), "absent"));
        let q = qb.build();
        let sel = local_selectivity(&db, &stats, &q, &q.local_predicates(r)[0]).unwrap();
        assert!(sel <= MIN_SELECTIVITY);
    }
}
