//! Cost-based query optimizer (the engine's stand-in for PostgreSQL's
//! planner) with externally injectable cardinalities.
//!
//! Components:
//!
//! * [`cost`] — the five-unit PostgreSQL-style cost model (§5.1.2),
//! * [`cardinality`] — native estimation (histograms/MCVs/AVI) overridden
//!   by Γ,
//! * [`overrides`] — Γ, the paper's store of sampling-validated
//!   cardinalities,
//! * [`dp`] — bottom-up dynamic-programming join enumeration,
//! * [`memo`] — the cross-round persistent DP table for incremental
//!   re-optimization,
//! * [`geqo`] — the genetic fallback beyond `geqo_threshold` relations,
//! * [`calibration`] — offline measurement of the cost units,
//! * [`profiles`] — PostgreSQL-like plus "commercial A/B" configurations
//!   (Figures 12–13),
//! * [`optimizer`] — the façade: `optimize_with(query, Γ)`.

pub mod calibration;
pub mod cardinality;
pub mod cost;
pub mod dp;
pub mod geqo;
pub mod memo;
pub mod optimizer;
pub mod overrides;
pub mod profiles;

pub use calibration::{calibrate, CalibrationReport};
pub use cardinality::{CardEstConfig, CardinalityEstimator};
pub use cost::{CostModel, CostUnits};
pub use dp::{OperatorSet, PinnedLeaf, SearchStats};
pub use geqo::GeqoConfig;
pub use memo::PlanMemo;
pub use optimizer::{Optimizer, OptimizerConfig, Planned};
pub use overrides::CardOverrides;
pub use profiles::SystemProfile;
