//! Optimizer profiles standing in for the paper's three host systems.
//!
//! Figures 12–13 run the OTT against two commercial RDBMSs ("system A" and
//! "system B") and find the same catastrophic behaviour as PostgreSQL. We
//! cannot ship those optimizers, so the experiment substitutes two
//! *independently configured* optimizer profiles of this engine (DESIGN.md
//! §2). What the experiment actually demonstrates — histogram + AVI
//! estimation cannot see the OTT's correlation regardless of the search
//! strategy or cost model in front of it — carries over unchanged.

use crate::cardinality::CardEstConfig;
use crate::cost::CostUnits;
use crate::dp::OperatorSet;
use crate::optimizer::OptimizerConfig;

/// Named optimizer profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemProfile {
    /// PostgreSQL-like: bushy DP, MCV join refinement, default units.
    PostgresLike,
    /// "Commercial system A": left-deep DP only, no MCV join refinement,
    /// default page costs.
    CommercialA,
    /// "Commercial system B": bushy DP, no MCV join refinement, a
    /// different unit vector (I/O-heavier, CPU-lighter).
    CommercialB,
}

impl SystemProfile {
    /// Materialize the profile's configuration.
    pub fn config(self) -> OptimizerConfig {
        match self {
            SystemProfile::PostgresLike => OptimizerConfig::postgres_like(),
            SystemProfile::CommercialA => OptimizerConfig {
                cost_units: CostUnits::postgres_defaults(),
                cardinality: CardEstConfig {
                    mcv_join_refinement: false,
                },
                operators: OperatorSet::default(),
                left_deep_only: true,
                geqo_threshold: 12,
                geqo: Default::default(),
            },
            SystemProfile::CommercialB => OptimizerConfig {
                cost_units: CostUnits {
                    seq_page_cost: 1.0,
                    random_page_cost: 8.0,
                    cpu_tuple_cost: 0.005,
                    cpu_index_tuple_cost: 0.0025,
                    cpu_operator_cost: 0.001,
                },
                cardinality: CardEstConfig {
                    mcv_join_refinement: false,
                },
                operators: OperatorSet::default(),
                left_deep_only: false,
                geqo_threshold: 12,
                geqo: Default::default(),
            },
        }
    }

    /// Display name used by the figure harnesses.
    pub fn name(self) -> &'static str {
        match self {
            SystemProfile::PostgresLike => "postgres-like",
            SystemProfile::CommercialA => "system-A",
            SystemProfile::CommercialB => "system-B",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_where_expected() {
        let pg = SystemProfile::PostgresLike.config();
        let a = SystemProfile::CommercialA.config();
        let b = SystemProfile::CommercialB.config();
        assert!(pg.cardinality.mcv_join_refinement);
        assert!(!a.cardinality.mcv_join_refinement);
        assert!(!b.cardinality.mcv_join_refinement);
        assert!(a.left_deep_only);
        assert!(!b.left_deep_only);
        assert_ne!(
            b.cost_units.random_page_cost,
            pg.cost_units.random_page_cost
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SystemProfile::PostgresLike.name(), "postgres-like");
        assert_eq!(SystemProfile::CommercialA.name(), "system-A");
        assert_eq!(SystemProfile::CommercialB.name(), "system-B");
    }
}
