//! The "hard query" mechanism, measured: the TPC-H-like generator's
//! correlated column pairs must make AVI estimation underestimate
//! conjunctions by roughly an order of magnitude (that is what lets the
//! hard templates reproduce the paper's difficult queries), while
//! uncorrelated conjunctions stay well-estimated.

use reopt::common::{ColId, RelId};
use reopt::optimizer::{CardOverrides, Optimizer};
use reopt::plan::{Predicate, QueryBuilder};
use reopt::stats::{analyze_database, AnalyzeOpts};
use reopt::storage::Database;
use reopt::workloads::tpch::{build_tpch_database, cols, tables, TpchConfig};

fn db(correlation: f64) -> Database {
    build_tpch_database(&TpchConfig {
        scale: 0.01,
        correlation,
        ..Default::default()
    })
    .unwrap()
}

/// Count rows of `table` matching all `preds` by brute force.
fn true_count(db: &Database, table: reopt::common::TableId, preds: &[(ColId, &str)]) -> usize {
    let t = db.table(table).unwrap();
    let cols: Vec<(&[i64], i64)> = preds
        .iter()
        .map(|(c, s)| {
            let col = t.column(*c).unwrap();
            let code = col
                .encode_constant(&reopt::storage::Value::from(*s))
                .unwrap();
            (col.data(), code.unwrap_or(i64::MIN + 1))
        })
        .collect();
    (0..t.row_count())
        .filter(|&i| cols.iter().all(|(data, code)| data[i] == *code))
        .count()
}

/// The optimizer's estimate for the same conjunction.
fn estimated_count(db: &Database, table: reopt::common::TableId, preds: &[(ColId, &str)]) -> f64 {
    let stats = analyze_database(db, &AnalyzeOpts::default()).unwrap();
    let opt = Optimizer::new(db, &stats);
    let mut qb = QueryBuilder::new();
    let r = qb.add_relation(table);
    for (c, s) in preds {
        qb.add_predicate(Predicate::eq(r, *c, *s));
    }
    let q = qb.build();
    opt.estimate_rows(
        &q,
        &CardOverrides::new(),
        reopt::common::RelSet::single(RelId::new(0)),
    )
    .unwrap()
}

#[test]
fn brand_container_conjunction_is_underestimated() {
    let db = db(0.9);
    // The generator's rule: correlated parts of BRAND#003 get
    // CONTAINER#003 (brand index mod 40).
    let preds = [
        (cols::part::BRAND, "BRAND#003"),
        (cols::part::CONTAINER, "CONTAINER#003"),
    ];
    let truth = true_count(&db, tables::PART, &preds) as f64;
    let est = estimated_count(&db, tables::PART, &preds);
    assert!(truth > 0.0, "correlated pair should co-occur");
    let factor = truth / est;
    assert!(
        factor > 8.0,
        "AVI should underestimate the correlated pair heavily: truth {truth}, est {est:.2}"
    );
}

#[test]
fn anti_correlated_pair_is_overestimated() {
    let db = db(0.9);
    // A mismatched container (brand 3 with brand-7's container) almost
    // never occurs, but AVI prices it identically to the matched pair.
    let matched = [
        (cols::part::BRAND, "BRAND#003"),
        (cols::part::CONTAINER, "CONTAINER#003"),
    ];
    let mismatched = [
        (cols::part::BRAND, "BRAND#003"),
        (cols::part::CONTAINER, "CONTAINER#007"),
    ];
    let est_match = estimated_count(&db, tables::PART, &matched);
    let est_mismatch = estimated_count(&db, tables::PART, &mismatched);
    // AVI blindness: same estimate either way (within MCV granularity).
    assert!(
        (est_match / est_mismatch).max(est_mismatch / est_match) < 3.0,
        "estimates should be similar: {est_match:.2} vs {est_mismatch:.2}"
    );
    // Reality: the mismatched pair is far rarer.
    let t_match = true_count(&db, tables::PART, &matched);
    let t_mismatch = true_count(&db, tables::PART, &mismatched);
    assert!(t_match > 5 * (t_mismatch + 1), "{t_match} vs {t_mismatch}");
}

#[test]
fn correlation_knob_zero_restores_avi_accuracy() {
    let db = db(0.0); // ablation: correlations disabled
    let preds = [
        (cols::part::BRAND, "BRAND#003"),
        (cols::part::CONTAINER, "CONTAINER#003"),
    ];
    let truth = true_count(&db, tables::PART, &preds) as f64;
    let est = estimated_count(&db, tables::PART, &preds);
    // With independent columns, AVI is a fair model: within ~4× either way
    // (small-sample noise at this scale).
    let factor = (truth.max(1.0) / est).max(est / truth.max(1.0));
    assert!(
        factor < 4.0,
        "AVI should be accurate on uncorrelated data: truth {truth}, est {est:.2}"
    );
}

#[test]
fn date_window_conjunction_is_underestimated() {
    let db = db(0.9);
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let opt = Optimizer::new(&db, &stats);
    // Q21's trick: overlapping ship/receipt windows.
    let d = 400i64;
    let mut qb = QueryBuilder::new();
    let l = qb.add_relation(tables::LINEITEM);
    qb.add_predicate(Predicate::between(l, cols::lineitem::SHIPDATE, d, d + 59));
    qb.add_predicate(Predicate::between(
        l,
        cols::lineitem::RECEIPTDATE,
        d,
        d + 74,
    ));
    let q = qb.build();
    let est = opt
        .estimate_rows(
            &q,
            &CardOverrides::new(),
            reopt::common::RelSet::single(RelId::new(0)),
        )
        .unwrap();
    // Brute-force truth.
    let t = db.table(tables::LINEITEM).unwrap();
    let ship = t.column(cols::lineitem::SHIPDATE).unwrap().data();
    let receipt = t.column(cols::lineitem::RECEIPTDATE).unwrap().data();
    let truth = ship
        .iter()
        .zip(receipt)
        .filter(|(s, r)| (d..=d + 59).contains(s) && (d..=d + 74).contains(r))
        .count() as f64;
    let factor = truth / est;
    assert!(
        factor > 5.0,
        "overlapping windows should be underestimated: truth {truth}, est {est:.2}"
    );
}
