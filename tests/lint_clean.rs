//! Tier-1 gate: the static-analysis pass must be clean.
//!
//! Runs `reopt-lint` in-process over `crates/*/src` against the checked-in
//! `lint-baseline.toml`, so `cargo test` fails on any new violation — an
//! unordered hash iteration in a result-producing crate, a panic path in
//! library code, a stray wall-clock read, an unjustified `Relaxed`, or a
//! poison-propagating `.lock().unwrap()` — exactly like the CI job
//! (`cargo run -p reopt-lint -- --check`).

use reopt_lint::{check, render_report, scan_workspace, Baseline};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn load_baseline() -> Baseline {
    let path = workspace_root().join("lint-baseline.toml");
    let text = std::fs::read_to_string(&path).expect("lint-baseline.toml at the workspace root");
    Baseline::parse(&text).expect("lint-baseline.toml parses")
}

#[test]
fn workspace_has_no_new_lint_violations() {
    let baseline = load_baseline();
    let violations = scan_workspace(workspace_root()).expect("scan crates/*/src");
    let outcome = check(&violations, &baseline);
    assert!(
        outcome.passed(),
        "reopt-lint found problems:\n{}",
        render_report(&outcome, &baseline)
    );
}

#[test]
fn burned_down_crates_stay_out_of_the_baseline() {
    // The deny ratchet: these crates finished their burn-down with zero
    // grandfathered debt, and the baseline must never readmit them.
    let baseline = load_baseline();
    for prefix in [
        "crates/core",
        "crates/executor",
        "crates/optimizer",
        "crates/service",
        "crates/telemetry",
    ] {
        assert!(
            baseline.denied(&format!("{prefix}/src/lib.rs")),
            "{prefix} must be deny-listed in lint-baseline.toml"
        );
        assert!(
            baseline.entries.iter().all(|e| !e.file.starts_with(prefix)),
            "{prefix} has a baseline entry despite being burned down"
        );
    }
}

#[test]
fn baseline_is_fully_consumed() {
    // Entries that no longer match any finding are stale debt records and
    // must be deleted — the ratchet only tightens.
    let baseline = load_baseline();
    let violations = scan_workspace(workspace_root()).expect("scan crates/*/src");
    let outcome = check(&violations, &baseline);
    assert!(
        outcome.stale_entries.is_empty(),
        "stale baseline entries (no matching findings): {:?}",
        outcome.stale_entries
    );
}
