//! Equivalence suite for incremental re-optimization: with the
//! `incremental` knob on (cross-round DP memo + sample dry-run cache) and
//! off (from-scratch every round), Algorithm 1 must walk the *same* round
//! trajectory, return a structurally identical final plan, and accumulate
//! an identical Γ — on the OTT fixtures and on a TPC-H subset. The caches
//! are pure work-avoidance; any observable divergence is a bug.

use reopt::common::rng::derive_rng_indexed;
use reopt::core::{ReOptConfig, ReOptimizer, ReoptReport};
use reopt::optimizer::Optimizer;
use reopt::plan::Query;
use reopt::sampling::{SampleConfig, SampleStore};
use reopt::stats::{analyze_database, AnalyzeOpts, DatabaseStats};
use reopt::storage::Database;
use reopt::workloads::ott::{
    build_ott_database, ott_query, ott_query_suite, recommended_sample_ratio, OttConfig,
};
use reopt::workloads::tpch::{build_tpch_database, instantiate, TpchConfig};

struct Setup {
    db: Database,
    stats: DatabaseStats,
    samples: SampleStore,
}

impl Setup {
    fn new(db: Database, ratio: f64) -> Self {
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(
            &db,
            SampleConfig {
                ratio,
                ..Default::default()
            },
        )
        .unwrap();
        Setup { db, stats, samples }
    }

    /// Run both modes and assert full observable equivalence.
    fn assert_equivalent(&self, q: &Query, label: &str) -> (ReoptReport, ReoptReport) {
        let opt = Optimizer::new(&self.db, &self.stats);
        let inc = ReOptimizer::with_config(
            &opt,
            &self.samples,
            ReOptConfig {
                incremental: true,
                ..Default::default()
            },
        );
        let scratch = ReOptimizer::with_config(
            &opt,
            &self.samples,
            ReOptConfig {
                incremental: false,
                ..Default::default()
            },
        );
        let a = inc.run(q).unwrap();
        let b = scratch.run(q).unwrap();
        assert_eq!(a.num_rounds(), b.num_rounds(), "{label}: round counts");
        assert_eq!(a.converged, b.converged, "{label}: convergence");
        for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
            assert!(
                ra.plan.same_structure(&rb.plan),
                "{label}: round {} plans differ:\n{}\nvs\n{}",
                ra.round,
                ra.plan.explain(),
                rb.plan.explain()
            );
        }
        assert!(
            a.final_plan.same_structure(&b.final_plan),
            "{label}: final plans differ:\n{}\nvs\n{}",
            a.final_plan.explain(),
            b.final_plan.explain()
        );
        assert_eq!(a.gamma.len(), b.gamma.len(), "{label}: Γ sizes");
        for (set, rows) in a.gamma.iter() {
            assert_eq!(b.gamma.get(set), Some(rows), "{label}: Γ({set})");
        }
        (a, b)
    }
}

#[test]
fn ott_incremental_equals_from_scratch() {
    let config = OttConfig {
        rows_per_value: 12,
        ..Default::default()
    };
    let db = build_ott_database(&config).unwrap();
    let setup = Setup::new(db, recommended_sample_ratio(&config));
    for (n, m) in [(5usize, 3usize), (6, 3)] {
        for consts in ott_query_suite(n, m) {
            let q = ott_query(&setup.db, &consts).unwrap();
            setup.assert_equivalent(&q, &format!("ott {consts:?}"));
        }
    }
}

#[test]
fn ott_incremental_mode_reuses_work() {
    // The acceptance shape: on a plan-changing OTT trajectory, rounds ≥ 2
    // re-plan strictly fewer DP subsets than round 1 and validation hits
    // the sample cache, while the outcome matches from-scratch exactly
    // (checked by assert_equivalent).
    let config = OttConfig {
        rows_per_value: 12,
        ..Default::default()
    };
    let db = build_ott_database(&config).unwrap();
    let setup = Setup::new(db, recommended_sample_ratio(&config));
    let mut saw_multi_round = false;
    for consts in ott_query_suite(5, 3) {
        let q = ott_query(&setup.db, &consts).unwrap();
        let (inc, _) = setup.assert_equivalent(&q, &format!("ott {consts:?}"));
        let r1 = &inc.rounds[0];
        assert_eq!(r1.dp_subsets_reused, 0, "{consts:?}: round 1 must be cold");
        for r in &inc.rounds[1..] {
            assert!(
                r.dp_subsets_replanned < r1.dp_subsets_replanned,
                "{consts:?}: round {} re-planned {} ≥ round 1's {}",
                r.round,
                r.dp_subsets_replanned,
                r1.dp_subsets_replanned
            );
        }
        if inc.num_rounds() > 2 {
            saw_multi_round = true;
            assert!(
                inc.total_sample_cache_hits() >= 1,
                "{consts:?}: multi-round run never hit the sample cache"
            );
        }
    }
    assert!(
        saw_multi_round,
        "suite produced no multi-round trajectory — fixture too easy"
    );
}

#[test]
fn tpch_incremental_equals_from_scratch() {
    let db = build_tpch_database(&TpchConfig {
        scale: 0.01,
        ..Default::default()
    })
    .unwrap();
    let setup = Setup::new(db, 0.05);
    for name in ["q3", "q5", "q9", "q21"] {
        for inst in 0..2u64 {
            let mut rng = derive_rng_indexed(0x1c4e, name, inst);
            let q = instantiate(&setup.db, name, &mut rng).unwrap();
            setup.assert_equivalent(&q, &format!("tpch {name}#{inst}"));
        }
    }
}
