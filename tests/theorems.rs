//! Machine checks of the paper's theory (§3) against real re-optimization
//! runs — Theorems 1, 2, 5 and Corollary 2, plus the Lemma 4 blindness
//! result that motivates the OTT.

use reopt::common::{RelId, RelSet};
use reopt::core::ReOptimizer;
use reopt::optimizer::{CardEstConfig, CardOverrides, CardinalityEstimator, Optimizer};
use reopt::plan::transform::TransformKind;
use reopt::sampling::{SampleConfig, SampleStore};
use reopt::stats::{analyze_database, AnalyzeOpts};
use reopt::workloads::ott::{
    build_ott_database, ott_query, ott_query_suite, recommended_sample_ratio, OttConfig,
};

struct Fixture {
    db: reopt::storage::Database,
    stats: reopt::stats::DatabaseStats,
    samples: SampleStore,
}

impl Fixture {
    fn new(rows_per_value: usize) -> Self {
        let config = OttConfig {
            rows_per_value,
            ..Default::default()
        };
        let db = build_ott_database(&config).unwrap();
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(
            &db,
            SampleConfig {
                ratio: recommended_sample_ratio(&config),
                ..Default::default()
            },
        )
        .unwrap();
        Fixture { db, stats, samples }
    }
}

/// Theorem 1 / Corollary 1: the loop always terminates, and whenever a
/// round adds nothing to Γ the next round is terminal.
#[test]
fn theorem1_convergence_condition() {
    let f = Fixture::new(8);
    let opt = Optimizer::new(&f.db, &f.stats);
    let re = ReOptimizer::new(&opt, &f.samples);
    for consts in ott_query_suite(6, 4) {
        let q = ott_query(&f.db, &consts).unwrap();
        let report = re.run(&q).unwrap();
        assert!(report.converged, "{consts:?}");
        for (i, r) in report.rounds.iter().enumerate() {
            if i + 1 < report.rounds.len() && r.gamma_new_entries == 0 {
                assert_eq!(
                    report.rounds[i + 1].transform,
                    Some(TransformKind::Identical),
                    "{consts:?}: covered round {} not followed by termination",
                    r.round
                );
            }
        }
    }
}

/// Theorem 2: across the whole 5-relation suite the transformation chain
/// is global* [local] identical.
#[test]
fn theorem2_chain_structure() {
    let f = Fixture::new(8);
    let opt = Optimizer::new(&f.db, &f.stats);
    let re = ReOptimizer::new(&opt, &f.samples);
    for consts in ott_query_suite(5, 4) {
        let q = ott_query(&f.db, &consts).unwrap();
        let report = re.run(&q).unwrap();
        report
            .verify_theorem2()
            .unwrap_or_else(|e| panic!("{consts:?}: {e}"));
    }
}

/// Theorem 5: under the final Γ, the final plan costs no more than any
/// plan generated along the way.
#[test]
fn theorem5_final_plan_optimality() {
    let f = Fixture::new(8);
    let opt = Optimizer::new(&f.db, &f.stats);
    let re = ReOptimizer::new(&opt, &f.samples);
    for consts in ott_query_suite(5, 4).into_iter().take(6) {
        let q = ott_query(&f.db, &consts).unwrap();
        let report = re.run(&q).unwrap();
        let (final_cost, per_round) = re.verify_final_optimality(&q, &report).unwrap();
        for (i, c) in per_round.iter().enumerate() {
            assert!(
                final_cost <= c * (1.0 + 1e-9),
                "{consts:?}: round {} plan cheaper ({c}) than final ({final_cost})",
                i + 1
            );
        }
    }
}

/// Theorem 6: the converged plan is the best among its local
/// transformations under the final Γ — checked by enumerating operand
/// swaps and operator substitutions of the final plan and re-costing each.
#[test]
fn theorem6_final_plan_beats_local_transformations() {
    let f = Fixture::new(8);
    let opt = Optimizer::new(&f.db, &f.stats);
    let re = ReOptimizer::new(&opt, &f.samples);
    let mut total_alternatives = 0usize;
    for consts in ott_query_suite(5, 4).into_iter().take(6) {
        let q = ott_query(&f.db, &consts).unwrap();
        let report = re.run(&q).unwrap();
        assert!(report.converged);
        let examined = re
            .verify_theorem6(&q, &report)
            .unwrap_or_else(|e| panic!("{consts:?}: {e}"));
        total_alternatives += examined;
    }
    assert!(total_alternatives > 0, "no local alternatives examined");
}

/// Corollary 2's scenario, part 1: wherever the loop takes a local step,
/// the tree's unordered join sets match the previous round's exactly.
#[test]
fn corollary2_local_step_shares_join_sets() {
    let f = Fixture::new(8);
    let opt = Optimizer::new(&f.db, &f.stats);
    let re = ReOptimizer::new(&opt, &f.samples);
    for consts in ott_query_suite(6, 4)
        .into_iter()
        .chain(ott_query_suite(5, 4))
    {
        let q = ott_query(&f.db, &consts).unwrap();
        let report = re.run(&q).unwrap();
        for w in report.rounds.windows(2) {
            if w[1].transform == Some(TransformKind::Local) {
                assert_eq!(
                    w[0].plan.logical_tree().join_sets(),
                    w[1].plan.logical_tree().join_sets(),
                    "{consts:?}"
                );
            }
        }
    }
}

/// Corollary 2's scenario, part 2 (deterministic): a Γ that inflates one
/// side of a two-table join flips the hash join's build/probe orientation
/// — a *local* transformation by Definition 1 — and the classification
/// machinery reports it as such.
#[test]
fn corollary2_engineered_local_transformation() {
    use reopt::plan::transform::classify_transformation;
    let f = Fixture::new(8);
    let opt = Optimizer::new(&f.db, &f.stats);
    let q = ott_query(&f.db, &[0, 0]).unwrap();
    let p1 = opt.optimize(&q).unwrap();

    // Claim whichever relation the plan currently treats as small is huge.
    let mut flipped = None;
    for (rel, inflate) in [(RelId::new(0), true), (RelId::new(1), true)] {
        let mut gamma = CardOverrides::new();
        let _ = inflate;
        gamma.insert(RelSet::single(rel), 1.0e7);
        let p2 = opt.optimize_with(&q, &gamma).unwrap();
        if !p1.plan.same_structure(&p2.plan) {
            flipped = Some(p2);
            break;
        }
    }
    let p2 = flipped.expect("no Γ produced a different 2-table plan");
    let kind = classify_transformation(&p1.plan.logical_tree(), &p2.plan.logical_tree());
    // With only two relations every alternative tree is a local
    // transformation (same unordered join set {0,1}).
    assert_eq!(kind, TransformKind::Local);
    assert_eq!(
        p1.plan.logical_tree().join_sets(),
        p2.plan.logical_tree().join_sets()
    );
}

/// Lemma 4 / §4.2.2: the native estimate for an OTT query is identical
/// whether or not the constants make it empty — for every prefix length.
#[test]
fn lemma4_estimates_blind_to_emptiness() {
    let f = Fixture::new(8);
    for k in 2..=6usize {
        let empty_consts: Vec<i64> = (0..k).map(|i| (i == k - 1) as i64).collect();
        let nonempty_consts = vec![0i64; k];
        let q_empty = ott_query(&f.db, &empty_consts).unwrap();
        let q_nonempty = ott_query(&f.db, &nonempty_consts).unwrap();
        let g = CardOverrides::new();
        let mut e1 =
            CardinalityEstimator::new(&f.db, &f.stats, &q_empty, &g, &CardEstConfig::default())
                .unwrap();
        let mut e2 =
            CardinalityEstimator::new(&f.db, &f.stats, &q_nonempty, &g, &CardEstConfig::default())
                .unwrap();
        let all = RelSet::first_n(k);
        let est_empty = e1.rows(all);
        let est_nonempty = e2.rows(all);
        assert!(
            (est_empty - est_nonempty).abs() < 1e-9,
            "k={k}: {est_empty} vs {est_nonempty}"
        );
    }
}

/// After re-optimization of an empty OTT query, Γ contains a validated
/// (near-)empty join — the mechanism that fixes the plan.
#[test]
fn gamma_contains_discovered_empty_join() {
    let f = Fixture::new(8);
    let opt = Optimizer::new(&f.db, &f.stats);
    let re = ReOptimizer::new(&opt, &f.samples);
    for consts in [vec![0i64, 0, 0, 0, 1], vec![1, 0, 0, 0, 0]] {
        let q = ott_query(&f.db, &consts).unwrap();
        let report = re.run(&q).unwrap();
        let empty_joins: Vec<(RelSet, f64)> = report
            .gamma
            .iter()
            .filter(|(s, rows)| s.len() >= 2 && *rows <= 1.0)
            .collect();
        assert!(
            !empty_joins.is_empty(),
            "{consts:?}: Γ = {:?}",
            report.gamma.iter().collect::<Vec<_>>()
        );
        // And the final plan's first executed join (deepest leftmost) is
        // one of the validated near-empty sets or produces few rows.
        let sets = report.final_plan.logical_tree().join_sets();
        let smallest = sets.iter().min_by_key(|s| s.len()).unwrap();
        let est = report.gamma.get(*smallest);
        assert!(
            est.is_none_or(|rows| rows <= 10.0),
            "{consts:?}: first join estimated at {est:?}"
        );
    }
}

/// Determinism across identical runs (foundation for every other check).
#[test]
fn full_pipeline_is_deterministic() {
    let f = Fixture::new(8);
    let opt = Optimizer::new(&f.db, &f.stats);
    let re = ReOptimizer::new(&opt, &f.samples);
    let q = ott_query(&f.db, &[0, 1, 0, 0, 1]).unwrap();
    let a = re.run(&q).unwrap();
    let b = re.run(&q).unwrap();
    assert_eq!(a.num_rounds(), b.num_rounds());
    assert!(a.final_plan.same_structure(&b.final_plan));
    let ra: Vec<_> = a.rounds.iter().map(|r| r.plan.fingerprint()).collect();
    let rb: Vec<_> = b.rounds.iter().map(|r| r.plan.fingerprint()).collect();
    assert_eq!(ra, rb);
}

/// RelId sanity for the suite helper (documents the fixture contract).
#[test]
fn suite_queries_reference_first_n_tables() {
    let f = Fixture::new(8);
    for consts in ott_query_suite(5, 4) {
        let q = ott_query(&f.db, &consts).unwrap();
        assert_eq!(q.num_relations(), 5);
        for i in 0..5 {
            assert_eq!(q.table_of(RelId::new(i)).unwrap().index(), i as usize);
        }
    }
}

/// Corollary 3: when all estimation errors are overestimates, the
/// sampling-validated costs cost_s(P_i) are non-increasing across rounds.
///
/// Engineered overestimation-only scenario: each chain table carries one
/// rare value (a single row) inside a wide non-MCV tail, so the native
/// equality estimate (non-MCV mass / nd_other ≈ 25 rows) overestimates
/// the true single-row selection ~25×; every join above inherits the
/// overestimate. Validation can only shrink cardinalities, which is the
/// corollary's premise.
#[test]
fn corollary3_overestimation_only_costs_are_monotone() {
    use reopt::common::{ColId, TableId};
    use reopt::plan::query::ColRef;
    use reopt::plan::{Predicate, QueryBuilder};
    use reopt::storage::{Column, ColumnDef, LogicalType, Table, TableSchema};

    let mut db = reopt::storage::Database::new();
    for t in 0..4usize {
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("a", LogicalType::Int),
                ColumnDef::new("b", LogicalType::Int),
            ])?;
            // 10_000 rows: value 0 dominates (50%, the only MCV); values
            // 1..=199 appear ~25 times each — except value 1, which
            // appears exactly once (the rare probe target).
            let mut a: Vec<i64> = vec![0; 5000];
            a.push(1);
            let mut v = 2i64;
            while a.len() < 10_000 {
                for _ in 0..25 {
                    if a.len() >= 10_000 {
                        break;
                    }
                    a.push(v);
                }
                v = if v >= 199 { 2 } else { v + 1 };
            }
            // Join column: uniform keys independent of `a`, so join
            // selectivities are estimated accurately — the *only* errors
            // are the leaf overestimates.
            let b: Vec<i64> = (0..10_000).map(|i| i % 100).collect();
            let mut tbl = Table::new(
                id,
                format!("ov{t}"),
                schema,
                vec![
                    Column::from_i64(LogicalType::Int, a),
                    Column::from_i64(LogicalType::Int, b),
                ],
            )?;
            tbl.create_index(ColId::new(0))?;
            tbl.create_index(ColId::new(1))?;
            Ok(tbl)
        })
        .unwrap();
    }
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(
        &db,
        SampleConfig {
            ratio: 0.2,
            ..Default::default()
        },
    )
    .unwrap();
    let opt = Optimizer::new(&db, &stats);
    let re = ReOptimizer::new(&opt, &samples);

    let mut qb = QueryBuilder::new();
    let rels: Vec<_> = (0..4usize)
        .map(|i| qb.add_relation(TableId::from(i)))
        .collect();
    for &r in &rels {
        qb.add_predicate(Predicate::eq(r, ColId::new(0), 1i64)); // the rare value
    }
    for w in rels.windows(2) {
        qb.add_join(
            ColRef::new(w[0], ColId::new(1)),
            ColRef::new(w[1], ColId::new(1)),
        );
    }
    let q = qb.build();

    // Premise check: the native leaf estimate really is an overestimate.
    let native = opt
        .estimate_rows(&q, &CardOverrides::new(), RelSet::single(RelId::new(0)))
        .unwrap();
    assert!(
        native > 5.0,
        "leaf estimate {native} not an overestimate of 1"
    );

    let report = re.run(&q).unwrap();
    assert!(report.converged);
    // All Γ entries shrank the estimates (overestimation-only regime)...
    for (set, rows) in report.gamma.iter() {
        let est = opt.estimate_rows(&q, &CardOverrides::new(), set).unwrap();
        // Validation clamps to ≥1 row, so compare against the clamped
        // native estimate: anything at the clamp floor is still a
        // downward (or neutral) correction.
        assert!(
            rows <= est.max(1.0) * 1.05,
            "{set}: validated {rows} above native {est} — not an overestimate"
        );
    }
    // ...and Corollary 3's monotonicity holds round over round.
    let costs: Vec<f64> = report.rounds.iter().map(|r| r.validated_cost).collect();
    for w in costs.windows(2) {
        assert!(
            w[1] <= w[0] * (1.0 + 1e-9),
            "validated costs not monotone: {costs:?}"
        );
    }
}
