//! Property tests of the mid-query re-optimization contracts:
//!
//! 1. **Exactness** — an observed cardinality injected into Γ is exact:
//!    the stored estimate equals the observation with no sampling scale,
//!    and no amount of sampled inserting/merging can displace it.
//! 2. **Pin atomicity** — re-planning with completed subtrees pinned
//!    never produces a plan that re-executes (decomposes or straddles) a
//!    checkpointed `RelSet`, under random chain queries, random pin
//!    windows, random poisoned Γ entries, and both tree disciplines.
//! 3. **End to end** — the full suspend → refine → replan → resume loop
//!    on randomized databases returns the same canonical tuple set as
//!    straight-through execution, and every exact Γ entry matches a
//!    straight re-execution's observation bit-for-bit.

use proptest::prelude::*;

use reopt::common::{ColId, RelId, RelSet, TableId};
use reopt::core::execute_mid_query;
use reopt::executor::{ExecOpts, Executor, RowSet};
use reopt::optimizer::{
    CardEstConfig, CardOverrides, CardinalityEstimator, CostModel, Optimizer, PinnedLeaf, PlanMemo,
};
use reopt::plan::physical::PlanNodeInfo;
use reopt::plan::query::ColRef;
use reopt::plan::{AccessPath, JoinAlgo, PhysicalPlan, Predicate, Query, QueryBuilder};
use reopt::stats::{analyze_database, AnalyzeOpts};
use reopt::storage::{Column, ColumnDef, Database, LogicalType, Table, TableSchema};

/// OTT-style chain database: k tables, `vals` distinct values, `per` rows
/// per value, b = a.
fn chain_db(k: usize, vals: i64, per: usize) -> Database {
    let mut db = Database::new();
    for t in 0..k {
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("a", LogicalType::Int),
                ColumnDef::new("b", LogicalType::Int),
            ])?;
            let mut data = Vec::new();
            for v in 0..vals {
                data.extend(std::iter::repeat_n(v, per));
            }
            let mut tbl = Table::new(
                id,
                format!("p{t}"),
                schema,
                vec![
                    Column::from_i64(LogicalType::Int, data.clone()),
                    Column::from_i64(LogicalType::Int, data),
                ],
            )?;
            tbl.create_index(ColId::new(0))?;
            tbl.create_index(ColId::new(1))?;
            Ok(tbl)
        })
        .unwrap();
    }
    db
}

fn chain_query(k: usize, consts: &[Option<i64>]) -> Query {
    let mut qb = QueryBuilder::new();
    let rels: Vec<_> = (0..k).map(|i| qb.add_relation(TableId::from(i))).collect();
    for (i, &r) in rels.iter().enumerate() {
        if let Some(c) = consts.get(i).copied().flatten() {
            qb.add_predicate(Predicate::eq(r, ColId::new(0), c));
        }
    }
    for w in rels.windows(2) {
        qb.add_join(
            ColRef::new(w[0], ColId::new(1)),
            ColRef::new(w[1], ColId::new(1)),
        );
    }
    qb.build()
}

/// Hand-built left-deep hash-join plan over a contiguous relation window —
/// the shape of a checkpointed breaker subtree.
fn window_plan(q: &Query, lo: u32, hi: u32) -> PhysicalPlan {
    let scan = |rel: u32| PhysicalPlan::Scan {
        rel: RelId::new(rel),
        table: TableId::new(rel),
        access: AccessPath::SeqScan,
        info: PlanNodeInfo::default(),
    };
    let mut acc = scan(lo);
    for rel in lo + 1..=hi {
        let keys: Vec<(ColRef, ColRef)> = q
            .joins
            .iter()
            .filter(|j| {
                (acc.relset().contains(j.left_rel) && j.right_rel == RelId::new(rel))
                    || (acc.relset().contains(j.right_rel) && j.left_rel == RelId::new(rel))
            })
            .map(|j| {
                (
                    ColRef::new(j.left_rel, j.left_col),
                    ColRef::new(j.right_rel, j.right_col),
                )
            })
            .collect();
        acc = PhysicalPlan::Join {
            algo: JoinAlgo::Hash,
            left: Box::new(acc),
            right: Box::new(scan(rel)),
            keys,
            info: PlanNodeInfo::default(),
        };
    }
    acc
}

fn rel_window(lo: u32, hi: u32) -> RelSet {
    (lo..=hi).map(RelId::new).collect()
}

fn canonical(rows: &RowSet) -> (Vec<RelId>, Vec<Vec<u32>>) {
    let mut rels: Vec<RelId> = rows.rels().to_vec();
    rels.sort();
    let mut tuples: Vec<Vec<u32>> = (0..rows.len())
        .map(|i| rels.iter().map(|&r| rows.rowids(r).unwrap()[i]).collect())
        .collect();
    tuples.sort_unstable();
    (rels, tuples)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Injected observations are exact: Γ returns the observed value
    /// bit-for-bit (no sampling scale applied), and sampled writes —
    /// direct or merged, before or after — never displace it.
    #[test]
    fn observed_cardinalities_are_exact_and_immovable(
        observed in proptest::collection::vec((1u64..1u64 << 40, 0u64..1_000_000_000), 1..8),
        sampled in proptest::collection::vec((1u64..1u64 << 40, 0u64..1_000_000_000u64), 0..8),
    ) {
        let mut gamma = CardOverrides::new();
        // Sampled noise first...
        for &(mask, rows) in &sampled {
            gamma.insert(RelSet::from_mask(mask), rows as f64);
        }
        // ...then the observations...
        for &(mask, rows) in &observed {
            gamma.insert_exact(RelSet::from_mask(mask), rows as f64);
        }
        // ...then more sampled noise, direct and merged.
        let mut delta = CardOverrides::new();
        for &(mask, rows) in &sampled {
            gamma.insert(RelSet::from_mask(mask), (rows / 2) as f64);
            delta.insert(RelSet::from_mask(mask), (rows / 3) as f64);
        }
        gamma.merge(&delta);

        // Last observation of each set wins; all are exact and intact.
        let mut last: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for &(mask, rows) in &observed {
            last.insert(mask, rows);
        }
        for (&mask, &rows) in &last {
            let set = RelSet::from_mask(mask);
            prop_assert!(gamma.is_exact(set));
            // Bit-exact: estimate == observed, no scale factor.
            prop_assert_eq!(gamma.get(set), Some(rows as f64));
        }
        prop_assert_eq!(gamma.exact_len(), last.len());
    }

    /// Pinned re-planning never re-executes a checkpointed `RelSet`: the
    /// pin appears verbatim as one atomic subtree and no node straddles
    /// it — whatever the chain length, pin window, poisoned Γ entries, or
    /// tree discipline.
    #[test]
    fn pinned_replanning_never_splits_checkpointed_sets(
        k in 3usize..=6,
        window in (0u32..5, 1u32..4),
        pin_rows in 1.0f64..1e6,
        poison in proptest::option::of((0u64..64, 1.0f64..1e12)),
        left_deep in any::<bool>(),
    ) {
        let (lo_raw, len) = window;
        // A pin is a completed join, so it spans ≥ 2 relations: lo ≤ k-2
        // and len ≥ 1 guarantee lo < hi ≤ k-1.
        let lo = lo_raw.min(k as u32 - 2);
        let hi = (lo + len).min(k as u32 - 1);

        let db = chain_db(k, 10, 3);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let q = chain_query(k, &vec![None; k]);
        let pin = PinnedLeaf {
            set: rel_window(lo, hi),
            plan: window_plan(&q, lo, hi),
            rows: pin_rows,
        };

        let mut gamma = CardOverrides::new();
        gamma.insert_exact(pin.set, pin_rows);
        if let Some((mask_bits, rows)) = poison {
            // A random (possibly pin-straddling) sampled claim must not be
            // able to bait the planner across the boundary.
            let mask = (mask_bits % (1 << k)).max(1);
            gamma.insert(RelSet::from_mask(mask), rows);
        }

        let mut est =
            CardinalityEstimator::new(&db, &stats, &q, &gamma, &CardEstConfig::default()).unwrap();
        let mut memo = PlanMemo::new();
        let (plan, _) = reopt::optimizer::dp::plan_dp_pinned(
            &db,
            &q,
            &mut est,
            &CostModel::default(),
            &reopt::optimizer::OperatorSet::default(),
            left_deep,
            &mut memo,
            std::slice::from_ref(&pin),
        )
        .unwrap();

        prop_assert_eq!(plan.relset(), RelSet::first_n(k));
        let mut pin_found = false;
        let mut violation: Option<String> = None;
        plan.visit(&mut |n| {
            let set = n.relset();
            let inside = set.is_subset_of(pin.set);
            let contains = pin.set.is_subset_of(set);
            let disjoint = pin.set.is_disjoint(set);
            if !(inside || contains || disjoint) {
                violation = Some(format!("node {set} straddles pin {}", pin.set));
            }
            if set == pin.set {
                if n.same_structure(&pin.plan) {
                    pin_found = true;
                } else {
                    violation = Some(format!("pin {} re-planned", pin.set));
                }
            }
        });
        prop_assert!(violation.is_none(), "{}: {:?}", plan.explain(), violation);
        prop_assert!(pin_found, "pin missing:\n{}", plan.explain());
    }

    /// End to end on randomized data: the mid-query loop's result equals
    /// straight-through execution (canonical tuple set), and each exact Γ
    /// entry matches the straight trace's observation for that set.
    #[test]
    fn mid_query_loop_is_result_equivalent(
        k in 3usize..=5,
        vals in 5i64..20,
        per in 2usize..5,
        consts in proptest::collection::vec(proptest::option::of(0i64..6), 5),
    ) {
        let db = chain_db(k, vals, per);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let q = chain_query(k, &consts[..k]);
        let opt = Optimizer::new(&db, &stats);
        let exec = Executor::with_opts(&db, ExecOpts::serial());

        let plan = opt.optimize(&q).unwrap().plan;
        let straight = exec.run_traced(&q, &plan).unwrap();
        let mid = execute_mid_query(
            &db,
            &opt,
            &q,
            &plan,
            reopt::core::MidQueryOpts {
                exec: ExecOpts::serial(),
                replan_discrepancy: None,
                ..reopt::core::MidQueryOpts::new()
            },
        )
        .unwrap();

        prop_assert_eq!(canonical(&straight.rows), canonical(&mid.rows));
        prop_assert!(mid.report.stats.suspensions >= 1);

        // Exactness against an independent straight re-execution of the
        // finishing plan.
        let final_trace = exec
            .run_traced(&q, mid.report.final_plan())
            .unwrap()
            .node_cards;
        for (set, rows) in final_trace {
            if mid.report.gamma.is_exact(set) {
                prop_assert_eq!(mid.report.gamma.get(set), Some(rows as f64));
            }
        }
    }
}
