//! The deterministic-RNG contract (`reopt_common::rng`): every stochastic
//! stage — data generation, sampling, optimization, validation — draws
//! from seed-derived streams, so the same seed must reproduce the same
//! `ReoptReport` bit-for-bit (modulo wall-clock timings) even when every
//! object is rebuilt from scratch.

use reopt::common::rng::{derive_rng_indexed, derive_seed};
use reopt::core::{ReOptimizer, ReoptReport};
use reopt::optimizer::Optimizer;
use reopt::sampling::{SampleConfig, SampleStore};
use reopt::stats::{analyze_database, AnalyzeOpts};
use reopt::storage::Database;
use reopt::workloads::tpch::{build_tpch_database, instantiate, TpchConfig};

fn build_db() -> Database {
    build_tpch_database(&TpchConfig {
        scale: 0.005,
        ..Default::default()
    })
    .unwrap()
}

/// Per-round digest: (fingerprint, est-rows bits, est-cost bits, Γ-adds).
type RoundDigest = (u64, u64, u64, u64);

/// Everything replay-relevant in a report, with timings stripped.
fn replay_digest(report: &ReoptReport) -> (Vec<RoundDigest>, String, bool, Vec<(u64, u64)>) {
    let rounds = report
        .rounds
        .iter()
        .map(|r| {
            (
                r.plan.fingerprint(),
                r.est_rows.to_bits(),
                r.est_cost.to_bits(),
                r.validated_cost.to_bits(),
            )
        })
        .collect();
    let mut gamma: Vec<(u64, u64)> = report
        .gamma
        .iter()
        .map(|(set, rows)| (set.mask(), rows.to_bits()))
        .collect();
    gamma.sort_unstable();
    (rounds, report.final_plan.explain(), report.converged, gamma)
}

fn run_once(seed_label: u64) -> ReoptReport {
    let db = build_db();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
    let opt = Optimizer::new(&db, &stats);
    let re = ReOptimizer::new(&opt, &samples);
    let mut rng = derive_rng_indexed(seed_label, "determinism", 0);
    let q = instantiate(&db, "q8", &mut rng).unwrap();
    re.run(&q).unwrap()
}

/// Same seed ⇒ identical database, bit for bit.
#[test]
fn same_seed_same_database() {
    let a = build_db();
    let b = build_db();
    assert_eq!(a.len(), b.len());
    for (ta, tb) in a.tables().iter().zip(b.tables()) {
        assert_eq!(ta.name(), tb.name());
        assert_eq!(ta.row_count(), tb.row_count(), "{}", ta.name());
        for (c, (ca, cb)) in ta.columns().iter().zip(tb.columns()).enumerate() {
            assert_eq!(ca.data(), cb.data(), "{} col {c}", ta.name());
        }
    }
}

/// Same seed ⇒ identical `ReoptReport` across two from-scratch runs.
#[test]
fn same_seed_same_reopt_report() {
    let a = run_once(0xdead_beef);
    let b = run_once(0xdead_beef);
    assert_eq!(replay_digest(&a), replay_digest(&b));
    // Summaries agree on everything except wall-clock fields.
    let (sa, sb) = (a.summary(), b.summary());
    assert_eq!(sa.rounds, sb.rounds);
    assert_eq!(sa.distinct_plans, sb.distinct_plans);
    assert_eq!(sa.converged, sb.converged);
    assert_eq!(sa.plan_changed, sb.plan_changed);
    assert_eq!(sa.gamma_entries, sb.gamma_entries);
    assert_eq!(sa.final_plan, sb.final_plan);
    assert_eq!(sa.transforms, sb.transforms);
}

/// Different query-instantiation seeds may diverge, and seed derivation
/// itself is stable and label-sensitive.
#[test]
fn seed_derivation_is_stable() {
    assert_eq!(derive_seed(7, "tpch"), derive_seed(7, "tpch"));
    assert_ne!(derive_seed(7, "tpch"), derive_seed(8, "tpch"));
    assert_ne!(derive_seed(7, "tpch"), derive_seed(7, "tpcds"));
}
