//! Cross-crate integration tests: generator → ANALYZE → optimizer →
//! executor → re-optimizer, checked for mutual consistency.

use reopt::common::rng::derive_rng_indexed;
use reopt::core::{ReOptConfig, ReOptimizer};
use reopt::executor::execute_plan;
use reopt::optimizer::{OperatorSet, Optimizer, OptimizerConfig};
use reopt::sampling::{SampleConfig, SampleStore};
use reopt::stats::{analyze_database, AnalyzeOpts};
use reopt::storage::Database;
use reopt::workloads::ott::{
    build_ott_database, ott_query, ott_query_suite, recommended_sample_ratio, OttConfig,
};
use reopt::workloads::tpcds;
use reopt::workloads::tpch::{all_template_names, build_tpch_database, instantiate, TpchConfig};

fn small_tpch() -> Database {
    build_tpch_database(&TpchConfig {
        scale: 0.003,
        ..Default::default()
    })
    .unwrap()
}

fn small_ott() -> (OttConfig, Database) {
    let config = OttConfig {
        rows_per_value: 8,
        ..Default::default()
    };
    let db = build_ott_database(&config).unwrap();
    (config, db)
}

fn ott_samples(config: &OttConfig, db: &Database) -> SampleStore {
    SampleStore::build(
        db,
        SampleConfig {
            ratio: recommended_sample_ratio(config),
            ..Default::default()
        },
    )
    .unwrap()
}

/// Every TPC-H template, planned with different operator subsets, must
/// produce the same join cardinality — differential correctness of the
/// optimizer + executor across plan shapes.
#[test]
fn plan_shape_does_not_change_results() {
    let db = small_tpch();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let configs: Vec<OptimizerConfig> = vec![
        OptimizerConfig::postgres_like(),
        OptimizerConfig {
            left_deep_only: true,
            ..OptimizerConfig::postgres_like()
        },
        OptimizerConfig {
            operators: OperatorSet {
                hash: false,
                merge: true,
                nested_loop: true,
                index_nested: false,
                index_scan: false,
            },
            ..OptimizerConfig::postgres_like()
        },
        OptimizerConfig {
            operators: OperatorSet {
                hash: true,
                merge: false,
                nested_loop: false,
                index_nested: true,
                index_scan: true,
            },
            ..OptimizerConfig::postgres_like()
        },
    ];
    for name in all_template_names() {
        let mut rng = derive_rng_indexed(5, name, 0);
        let q = instantiate(&db, name, &mut rng).unwrap();
        let mut counts = Vec::new();
        for cfg in &configs {
            let opt = Optimizer::with_config(&db, &stats, cfg.clone());
            let planned = opt.optimize(&q).unwrap();
            let out = execute_plan(&db, &q, &planned.plan).unwrap();
            counts.push(out.join_rows);
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{name}: differing cardinalities across plan shapes: {counts:?}"
        );
    }
}

/// Re-optimization must preserve query semantics: the final plan returns
/// exactly the same join cardinality and aggregate as the original plan.
#[test]
fn reoptimization_preserves_semantics() {
    let db = small_tpch();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
    let opt = Optimizer::new(&db, &stats);
    let re = ReOptimizer::new(&opt, &samples);
    for name in ["q3", "q5", "q8", "q9", "q17", "q21"] {
        let mut rng = derive_rng_indexed(6, name, 0);
        let q = instantiate(&db, name, &mut rng).unwrap();
        let report = re.run(&q).unwrap();
        let orig = execute_plan(&db, &q, &report.rounds[0].plan).unwrap();
        let fin = execute_plan(&db, &q, &report.final_plan).unwrap();
        assert_eq!(orig.join_rows, fin.join_rows, "{name}");
        assert_eq!(orig.agg, fin.agg, "{name}: aggregates differ");
    }
}

/// OTT queries: empty queries stay empty, non-empty match the closed form,
/// under both original and re-optimized plans.
#[test]
fn ott_cardinalities_match_closed_form() {
    let (config, db) = small_ott();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = ott_samples(&config, &db);
    let opt = Optimizer::new(&db, &stats);
    let re = ReOptimizer::new(&opt, &samples);
    for consts in [vec![0i64, 0, 0, 1], vec![0, 0, 0, 0], vec![1, 1, 0, 1]] {
        let q = ott_query(&db, &consts).unwrap();
        let report = re.run(&q).unwrap();
        let rows = execute_plan(&db, &q, &report.final_plan).unwrap().join_rows;
        let expected = reopt::workloads::ott::true_query_size(&config, &consts);
        assert_eq!(rows as f64, expected, "constants {consts:?}");
    }
}

/// The whole 4-join OTT suite converges, and re-optimized plans are never
/// slower than the originals by more than measurement noise.
#[test]
fn ott_suite_converges() {
    let (config, db) = small_ott();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = ott_samples(&config, &db);
    let opt = Optimizer::new(&db, &stats);
    let re = ReOptimizer::new(&opt, &samples);
    for consts in ott_query_suite(5, 4) {
        let q = ott_query(&db, &consts).unwrap();
        let report = re.run(&q).unwrap();
        assert!(report.converged, "no convergence for {consts:?}");
        assert!(
            report.num_rounds() <= 10,
            "paper: <10 rounds; got {} for {consts:?}",
            report.num_rounds()
        );
    }
}

/// TPC-DS templates run end-to-end through the loop.
#[test]
fn tpcds_templates_run() {
    let db = tpcds::build_tpcds_database(&tpcds::TpcdsConfig {
        scale: 0.05,
        ..Default::default()
    })
    .unwrap();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
    let opt = Optimizer::new(&db, &stats);
    let re = ReOptimizer::new(&opt, &samples);
    for name in tpcds::all_template_names() {
        let mut rng = derive_rng_indexed(7, name, 0);
        let q = tpcds::instantiate(&db, name, &mut rng).unwrap();
        let report = re.run(&q).unwrap();
        assert!(report.converged, "{name} did not converge");
        let orig = execute_plan(&db, &q, &report.rounds[0].plan).unwrap();
        let fin = execute_plan(&db, &q, &report.final_plan).unwrap();
        assert_eq!(orig.join_rows, fin.join_rows, "{name}");
    }
}

/// The loop respects its time budget strategy.
#[test]
fn time_budget_is_honored() {
    let (config, db) = small_ott();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = ott_samples(&config, &db);
    let opt = Optimizer::new(&db, &stats);
    let config = ReOptConfig {
        time_budget: Some(std::time::Duration::ZERO),
        ..Default::default()
    };
    let re = ReOptimizer::with_config(&opt, &samples, config);
    let q = ott_query(&db, &[0, 0, 0, 0, 1]).unwrap();
    let report = re.run(&q).unwrap();
    // A zero budget stops after the first validated round (or converges
    // trivially); either way, at most 2 optimizer calls.
    assert!(report.num_rounds() <= 2, "rounds: {}", report.num_rounds());
}
