//! Shape-level reproduction checks: the qualitative findings of the
//! paper's evaluation, asserted on deterministic runs. These are the
//! repository's "does it reproduce the paper" gate (EXPERIMENTS.md holds
//! the quantitative tables).

use reopt::common::rng::derive_rng_indexed;
use reopt::core::ReOptimizer;
use reopt::executor::execute_plan;
use reopt::optimizer::{Optimizer, SystemProfile};
use reopt::sampling::{SampleConfig, SampleStore};
use reopt::stats::{analyze_database, AnalyzeOpts};
use reopt::workloads::ott::{
    build_ott_database, ott_query, ott_query_suite, recommended_sample_ratio, OttConfig,
};
use reopt::workloads::tpcds;
use reopt::workloads::tpch::{
    all_template_names, build_tpch_database, instantiate, is_hard_template, TpchConfig,
};

/// §5.3: on the OTT, re-optimization detects the empty joins for *every*
/// query of both suites, and the repaired plans produce far less
/// intermediate work than the worst original plans.
#[test]
fn ott_reoptimization_fixes_all_queries() {
    let config = OttConfig {
        rows_per_value: 12,
        ..Default::default()
    };
    let db = build_ott_database(&config).unwrap();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(
        &db,
        SampleConfig {
            ratio: recommended_sample_ratio(&config),
            ..Default::default()
        },
    )
    .unwrap();
    let opt = Optimizer::new(&db, &stats);
    let re = ReOptimizer::new(&opt, &samples);

    for (n, m) in [(5usize, 4usize), (6, 4)] {
        let mut worst_original = 0u64;
        let mut worst_final = 0u64;
        for consts in ott_query_suite(n, m) {
            let q = ott_query(&db, &consts).unwrap();
            let report = re.run(&q).unwrap();
            let orig = execute_plan(&db, &q, &report.rounds[0].plan).unwrap();
            let fin = execute_plan(&db, &q, &report.final_plan).unwrap();
            assert_eq!(fin.join_rows, 0, "{consts:?} should be empty");
            worst_original = worst_original.max(orig.metrics.rows_produced);
            worst_final = worst_final.max(fin.metrics.rows_produced);
        }
        // The paper's gap is orders of magnitude; at library scale we
        // still require >20× between the worst original and worst
        // re-optimized intermediate volume.
        assert!(
            worst_original > 20 * worst_final.max(1),
            "n={n}: worst original {worst_original} vs worst final {worst_final}"
        );
    }
}

/// §5.2: on TPC-H-like data, the correlated "hard" templates see their
/// plans changed by re-optimization, and — under *calibrated* cost units,
/// the configuration the paper's big wins use (Figure 4(b)/7(b)) — the
/// re-optimized plans do not regress in aggregate wall time.
///
/// (Under the *default* units re-optimization can trade index probes for
/// scans that the mis-calibrated model prefers; the paper observed the
/// same on its Figure 7(a) and prescribed calibration.)
#[test]
fn tpch_hard_queries_change_and_do_not_regress() {
    let db = build_tpch_database(&TpchConfig {
        scale: 0.01,
        ..Default::default()
    })
    .unwrap();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
    let mut config = reopt::optimizer::OptimizerConfig::postgres_like();
    config.cost_units = reopt::optimizer::calibrate(7, 1).units;
    let opt = Optimizer::with_config(&db, &stats, config);
    let re = ReOptimizer::new(&opt, &samples);

    let mut hard_changed = 0usize;
    let mut hard_total = 0usize;
    let mut orig_total_ms = 0.0f64;
    let mut final_total_ms = 0.0f64;
    for name in all_template_names().iter().filter(|n| is_hard_template(n)) {
        for inst in 0..3u64 {
            let mut rng = derive_rng_indexed(0x5a9e, name, inst);
            let q = instantiate(&db, name, &mut rng).unwrap();
            let report = re.run(&q).unwrap();
            hard_total += 1;
            hard_changed += report.plan_changed() as usize;
            // Best of 3 runs per plan to damp scheduler noise.
            let time_plan = |plan: &reopt::plan::PhysicalPlan| -> f64 {
                (0..3)
                    .map(|_| {
                        let out = execute_plan(&db, &q, plan).unwrap();
                        out.metrics.elapsed.as_secs_f64() * 1e3
                    })
                    .fold(f64::INFINITY, f64::min)
            };
            orig_total_ms += time_plan(&report.rounds[0].plan);
            final_total_ms += time_plan(&report.final_plan);
        }
    }
    // The paper's own result is that only a *few* queries improve (3 of
    // 21 TPC-H queries there, ≈1/7); we require at least an eighth of
    // hard instances to re-plan, and the aggregate to not regress.
    assert!(
        hard_changed * 8 >= hard_total,
        "re-optimization changed only {hard_changed}/{hard_total} hard instances"
    );
    assert!(
        final_total_ms <= orig_total_ms * 1.3,
        "hard set regressed in aggregate: {orig_total_ms:.2}ms -> {final_total_ms:.2}ms"
    );
}

/// §5.2: most non-hard templates keep their original plan (the paper:
/// "for most of the TPC-H queries, the re-optimized plans are exactly the
/// same as the original ones").
#[test]
fn tpch_easy_queries_mostly_unchanged() {
    let db = build_tpch_database(&TpchConfig {
        scale: 0.01,
        ..Default::default()
    })
    .unwrap();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
    let opt = Optimizer::new(&db, &stats);
    let re = ReOptimizer::new(&opt, &samples);

    let mut unchanged = 0usize;
    let mut total = 0usize;
    for name in all_template_names().iter().filter(|n| !is_hard_template(n)) {
        let mut rng = derive_rng_indexed(0xea5e, name, 0);
        let q = instantiate(&db, name, &mut rng).unwrap();
        let report = re.run(&q).unwrap();
        total += 1;
        unchanged += (!report.plan_changed()) as usize;
    }
    assert!(
        unchanged * 3 >= total * 2,
        "only {unchanged}/{total} easy templates kept their plan"
    );
}

/// §5.2/§5.3: re-optimization converges in few rounds (paper: < 10,
/// mostly 1–2) across all workloads.
#[test]
fn convergence_is_fast_everywhere() {
    let db = build_tpch_database(&TpchConfig {
        scale: 0.005,
        ..Default::default()
    })
    .unwrap();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
    let opt = Optimizer::new(&db, &stats);
    let re = ReOptimizer::new(&opt, &samples);
    let mut histogram = [0usize; 11];
    for name in all_template_names() {
        let mut rng = derive_rng_indexed(0xc0, name, 0);
        let q = instantiate(&db, name, &mut rng).unwrap();
        let report = re.run(&q).unwrap();
        assert!(report.converged, "{name}");
        assert!(
            report.num_rounds() < 10,
            "{name}: {} rounds",
            report.num_rounds()
        );
        histogram[report.num_rounds().min(10)] += 1;
    }
    // "most of which require only 1 or 2 rounds" — in our loop a
    // no-change query takes 2 optimizer calls (plan + confirmation).
    let fast: usize = histogram[..4].iter().sum();
    assert!(fast * 3 >= all_template_names().len() * 2, "{histogram:?}");
}

/// Figures 12–13: the commercial-profile optimizers fall into the same
/// OTT trap (their original plans do heavy work on empty queries), and
/// re-optimization repairs them too.
#[test]
fn commercial_profiles_share_the_trap_and_the_fix() {
    let config = OttConfig {
        rows_per_value: 12,
        ..Default::default()
    };
    let db = build_ott_database(&config).unwrap();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(
        &db,
        SampleConfig {
            ratio: recommended_sample_ratio(&config),
            ..Default::default()
        },
    )
    .unwrap();
    for profile in [SystemProfile::CommercialA, SystemProfile::CommercialB] {
        let opt = Optimizer::with_config(&db, &stats, profile.config());
        let re = ReOptimizer::new(&opt, &samples);
        let mut worst_original = 0u64;
        for consts in ott_query_suite(5, 4) {
            let q = ott_query(&db, &consts).unwrap();
            let report = re.run(&q).unwrap();
            let orig = execute_plan(&db, &q, &report.rounds[0].plan).unwrap();
            let fin = execute_plan(&db, &q, &report.final_plan).unwrap();
            assert_eq!(fin.join_rows, 0);
            worst_original = worst_original.max(orig.metrics.rows_produced);
            assert!(
                fin.metrics.rows_produced <= orig.metrics.rows_produced.max(60),
                "{:?} {consts:?}",
                profile
            );
        }
        assert!(
            worst_original > 1000,
            "{profile:?} never fell into the trap (worst = {worst_original})"
        );
    }
}

/// Appendix A.2: the tweaked q50p changes plan under re-optimization while
/// the stock q50 keeps its plan.
#[test]
fn tpcds_q50_variants_behave_as_in_paper() {
    let db = tpcds::build_tpcds_database(&tpcds::TpcdsConfig {
        scale: 0.3,
        ..Default::default()
    })
    .unwrap();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
    let opt = Optimizer::new(&db, &stats);
    let re = ReOptimizer::new(&opt, &samples);

    let mut changed_p = 0;
    for inst in 0..3u64 {
        let mut rng = derive_rng_indexed(0xd50, "q50p", inst);
        let qp = tpcds::instantiate(&db, "q50p", &mut rng).unwrap();
        let rp = re.run(&qp).unwrap();
        changed_p += rp.plan_changed() as usize;
    }
    assert!(changed_p >= 1, "q50p never re-optimized");
}
