//! The mid-query re-optimization contract, proven across workloads:
//! suspending at **every** materialization point, folding the exact
//! observed cardinalities into Γ, re-planning the remainder with completed
//! subtrees pinned, and resuming yields results **identical** to
//! straight-through execution — on OTT, TPC-H and TPC-DS templates, at
//! `threads ∈ {1, 4}`, and under `SubtreeCache` replay (warm shared
//! sample-run caches feeding the initial sampling loop, and the checkpoint
//! splice path feeding every resume).
//!
//! "Identical" is canonical tuple-set identity: the loop may finish the
//! query with a different plan than it started with (that is the point),
//! and different plan shapes emit the same tuples in different orders, so
//! results are compared with relations in ascending id order and tuples
//! sorted — a bit-exact comparison of row ids, insensitive only to
//! emission order. Aggregates over the identical tuple set are compared
//! exactly for ints/strings and to 1e-9 relative tolerance for floats
//! (summation order is plan-dependent).

use reopt::common::rng::derive_rng_indexed;
use reopt::common::RelId;
use reopt::core::{execute_mid_query, MidQueryOpts, MidQueryRun, ReOptConfig, ReOptimizer};
use reopt::executor::{AggOutput, ExecOpts, Executor, RowSet};
use reopt::optimizer::Optimizer;
use reopt::plan::Query;
use reopt::sampling::{SampleConfig, SampleStore, SharedSampleRunCache};
use reopt::stats::{analyze_database, AnalyzeOpts, DatabaseStats};
use reopt::storage::{Database, Value};
use reopt::workloads::ott::{build_ott_database, ott_query, recommended_sample_ratio, OttConfig};
use reopt::workloads::{tpcds, tpch};

const THREAD_COUNTS: [usize; 2] = [1, 4];

struct Bound {
    db: Database,
    stats: DatabaseStats,
    samples: SampleStore,
}

fn ott_bound() -> Bound {
    let config = OttConfig {
        rows_per_value: 20,
        ..Default::default()
    };
    let db = build_ott_database(&config).unwrap();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(
        &db,
        SampleConfig {
            ratio: recommended_sample_ratio(&config),
            ..Default::default()
        },
    )
    .unwrap();
    Bound { db, stats, samples }
}

fn tpch_bound() -> Bound {
    let db = tpch::build_tpch_database(&tpch::TpchConfig {
        scale: 0.005,
        ..Default::default()
    })
    .unwrap();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
    Bound { db, stats, samples }
}

fn tpcds_bound() -> Bound {
    let db = tpcds::build_tpcds_database(&tpcds::TpcdsConfig {
        scale: 0.05,
        ..Default::default()
    })
    .unwrap();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
    Bound { db, stats, samples }
}

/// Canonical tuple-set view: relations ascending, tuples sorted. Two row
/// sets with equal canonical views hold bit-identical row ids.
fn canonical(rows: &RowSet) -> (Vec<RelId>, Vec<Vec<u32>>) {
    let mut rels: Vec<RelId> = rows.rels().to_vec();
    rels.sort();
    let mut tuples: Vec<Vec<u32>> = (0..rows.len())
        .map(|i| rels.iter().map(|&r| rows.rowids(r).unwrap()[i]).collect())
        .collect();
    tuples.sort_unstable();
    (rels, tuples)
}

/// Bitwise row-set identity (same emission order) — for comparing two runs
/// of the *same* trajectory at different thread counts.
fn assert_rowsets_bit_identical(a: &RowSet, b: &RowSet, label: &str) {
    assert_eq!(a.rels(), b.rels(), "{label}: relation columns");
    assert_eq!(a.len(), b.len(), "{label}: cardinality");
    for &rel in a.rels() {
        assert_eq!(
            a.rowids(rel).unwrap(),
            b.rowids(rel).unwrap(),
            "{label}: rowids of {rel}"
        );
    }
}

fn values_equivalent(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-9 * scale
        }
        _ => a == b,
    }
}

/// Aggregates over the identical input tuple set, computed under possibly
/// different emission orders: exact except for float summation order.
fn assert_aggs_equivalent(a: &Option<AggOutput>, b: &Option<AggOutput>, label: &str) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.rows.len(), b.rows.len(), "{label}: group count");
            for (ra, rb) in a.rows.iter().zip(&b.rows) {
                assert_eq!(ra.keys, rb.keys, "{label}: group keys");
                assert_eq!(ra.aggs.len(), rb.aggs.len(), "{label}");
                for (va, vb) in ra.aggs.iter().zip(&rb.aggs) {
                    assert!(
                        values_equivalent(va, vb),
                        "{label}: aggregate {va:?} vs {vb:?}"
                    );
                }
            }
        }
        _ => panic!("{label}: one side aggregated, the other did not"),
    }
}

/// A digest of everything trajectory-relevant in a mid-query run.
fn trajectory_digest(run: &MidQueryRun) -> (Vec<u64>, usize, usize, usize) {
    (
        run.report.plans.iter().map(|p| p.fingerprint()).collect(),
        run.report.stats.suspensions,
        run.report.stats.plan_switches,
        run.report.stats.splices,
    )
}

/// The conformance check for one (workload, query):
///
/// 1. straight-through execution of the sampling loop's final plan is the
///    reference result;
/// 2. mid-query execution — suspending at every materialization point —
///    must produce the identical canonical tuple set and equivalent
///    aggregates, at every thread count;
/// 3. the mid-query trajectory itself must be thread-count invariant
///    (bit-identical rows, same plans, same counters);
/// 4. every exact Γ entry must equal the true observed cardinality —
///    estimate == observed, no sampling scale.
fn check_conformance(bound: &Bound, query: &Query, label: &str) {
    let opt = Optimizer::new(&bound.db, &bound.stats);
    let straight = ReOptimizer::with_config(&opt, &bound.samples, ReOptConfig::with_threads(1))
        .execute_with_opts(query, ExecOpts::serial())
        .unwrap();
    let reference = canonical(&straight.run.rows);

    let mut runs: Vec<MidQueryRun> = Vec::new();
    for threads in THREAD_COUNTS {
        // Exhaustive mode — replan at every materialization point, the
        // strongest form of the contract (the gated default skips replans
        // that confirm beliefs; it is checked separately below).
        let config = ReOptConfig {
            mid_query: true,
            replan_discrepancy: None,
            ..ReOptConfig::with_threads(threads)
        };
        let mid = ReOptimizer::with_config(&opt, &bound.samples, config)
            .execute_with_opts(query, ExecOpts::with_threads(threads))
            .unwrap();

        assert_eq!(
            reference,
            canonical(&mid.run.rows),
            "{label}: mid-query result differs at threads={threads}"
        );
        assert_aggs_equivalent(
            &straight.run.agg,
            &mid.run.agg,
            &format!("{label} threads={threads}"),
        );
        // Joins of ≥3 relations have at least one non-root join: mid-query
        // must actually suspend there, once per materialization point.
        if query.num_relations() >= 3 {
            assert!(
                mid.run.report.stats.suspensions >= 1,
                "{label}: never suspended"
            );
            assert_eq!(
                mid.run.report.stats.replans, mid.run.report.stats.suspensions,
                "{label}: every suspension must replan"
            );
            assert!(
                mid.run.report.stats.splices >= 1,
                "{label}: resume never spliced a checkpoint"
            );
        }
        runs.push(mid.run);
    }

    // The gated default (replan only on ≥2× disagreement) must land on
    // the identical canonical result too — it can only skip replans,
    // never change what a segment computes.
    let gated = ReOptimizer::with_config(
        &opt,
        &bound.samples,
        ReOptConfig {
            mid_query: true,
            ..ReOptConfig::with_threads(1)
        },
    )
    .execute_with_opts(query, ExecOpts::serial())
    .unwrap();
    assert_eq!(
        reference,
        canonical(&gated.run.rows),
        "{label}: gated mid-query result differs"
    );
    assert!(
        gated.run.report.stats.replans <= gated.run.report.stats.suspensions,
        "{label}: gate can only skip replans"
    );

    // Thread-count invariance of the whole trajectory.
    let base = &runs[0];
    for (i, run) in runs.iter().enumerate().skip(1) {
        assert_rowsets_bit_identical(
            &base.rows,
            &run.rows,
            &format!("{label}: threads={} vs 1", THREAD_COUNTS[i]),
        );
        assert_eq!(
            trajectory_digest(base),
            trajectory_digest(run),
            "{label}: trajectory diverged at threads={}",
            THREAD_COUNTS[i]
        );
    }

    // Exactness: every exact Γ entry equals the true cardinality of that
    // set wherever the finishing plan's trace covers it.
    let exec = Executor::with_opts(&bound.db, ExecOpts::serial());
    let trace = exec
        .run_traced(query, base.report.final_plan())
        .unwrap()
        .node_cards;
    let mut verified = 0usize;
    for (set, rows) in trace {
        if base.report.gamma.is_exact(set) {
            assert_eq!(
                base.report.gamma.get(set),
                Some(rows as f64),
                "{label}: exact Γ({set}) diverges from observation"
            );
            verified += 1;
        }
    }
    if query.num_relations() >= 3 {
        assert!(verified > 0, "{label}: no exact entry was verifiable");
    }
}

/// The same contract when the *initial* sampling loop runs over a warm
/// shared `SubtreeCache` (dry-run replay): replayed validation must land
/// on the same plan, and mid-query execution from it on the same result.
fn check_replay_conformance(bound: &Bound, query: &Query, label: &str) {
    let opt = Optimizer::new(&bound.db, &bound.stats);
    let config = ReOptConfig::with_threads(1);
    let re = ReOptimizer::with_config(&opt, &bound.samples, config);

    let shared = SharedSampleRunCache::new();
    let cold = re.run_shared(query, &shared).unwrap();
    let warm = re.run_shared(query, &shared).unwrap(); // full replay
    assert!(
        cold.final_plan.same_structure(&warm.final_plan),
        "{label}: replayed loop chose a different plan"
    );
    assert!(
        shared.stats().hits > 0,
        "{label}: warm loop never hit the dry-run cache"
    );

    let mid_of = |report: &reopt::core::ReoptReport| {
        execute_mid_query(
            &bound.db,
            &opt,
            query,
            &report.final_plan,
            MidQueryOpts {
                gamma: report.gamma.clone(),
                exec: ExecOpts::serial(),
                replan_discrepancy: None,
                ..MidQueryOpts::new()
            },
        )
        .unwrap()
    };
    let a = mid_of(&cold);
    let b = mid_of(&warm);
    assert_rowsets_bit_identical(&a.rows, &b.rows, label);
    assert_eq!(
        trajectory_digest(&a),
        trajectory_digest(&b),
        "{label}: replay changed the mid-query trajectory"
    );
}

/// Cross-engine conformance: the mid-query loop under the columnar engine
/// must be **bit-identical** to the row engine — same emission-order row
/// sets, same trajectory (plans, suspensions, switches, splices), and
/// bit-equal aggregates (the trajectory is identical, so even float
/// summation order matches) — at `threads ∈ {1, 4}`.
fn check_columnar_conformance(bound: &Bound, query: &Query, label: &str) {
    let opt = Optimizer::new(&bound.db, &bound.stats);
    for threads in THREAD_COUNTS {
        let run_with = |columnar: bool| {
            let mut config = ReOptConfig {
                mid_query: true,
                replan_discrepancy: None,
                ..ReOptConfig::with_threads(threads)
            };
            config.validation.columnar = Some(columnar);
            ReOptimizer::with_config(&opt, &bound.samples, config)
                .execute_with_opts(
                    query,
                    ExecOpts {
                        threads,
                        columnar: Some(columnar),
                        ..Default::default()
                    },
                )
                .unwrap()
        };
        let by_rows = run_with(false);
        let by_cols = run_with(true);
        assert_rowsets_bit_identical(
            &by_rows.run.rows,
            &by_cols.run.rows,
            &format!("{label}: engines at threads={threads}"),
        );
        assert_eq!(
            trajectory_digest(&by_rows.run),
            trajectory_digest(&by_cols.run),
            "{label}: engine changed the mid-query trajectory at threads={threads}"
        );
        // Identical trajectory ⇒ identical accumulation order ⇒ the
        // aggregates must agree bit for bit, floats included.
        match (&by_rows.run.agg, &by_cols.run.agg) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.rows.len(), b.rows.len(), "{label}: group count");
                for (ra, rb) in a.rows.iter().zip(&b.rows) {
                    assert_eq!(ra.keys, rb.keys, "{label}: group keys");
                    for (va, vb) in ra.aggs.iter().zip(&rb.aggs) {
                        match (va, vb) {
                            (Value::Float(x), Value::Float(y)) => assert_eq!(
                                x.to_bits(),
                                y.to_bits(),
                                "{label}: float bits diverged across engines"
                            ),
                            _ => assert_eq!(va, vb, "{label}"),
                        }
                    }
                }
            }
            _ => panic!("{label}: one engine aggregated, the other did not"),
        }
    }
}

/// Tracing invariance: running the identical mid-query configuration with
/// span recording on must be **bit-identical** to running it with the
/// tracer off — same emission-order row sets, same trajectory, equivalent
/// aggregates — at `threads ∈ {1, 4}` under both engines. Telemetry is
/// observation only; it must never feed back into a plan or a row.
fn check_tracing_invariance(bound: &Bound, query: &Query, label: &str) {
    use reopt::telemetry::{names, Tracer};
    let opt = Optimizer::new(&bound.db, &bound.stats);
    for threads in THREAD_COUNTS {
        for columnar in [false, true] {
            let run_with = |tracer: Tracer| {
                let mut config = ReOptConfig {
                    mid_query: true,
                    replan_discrepancy: None,
                    ..ReOptConfig::with_threads(threads)
                };
                config.validation.columnar = Some(columnar);
                ReOptimizer::with_config(&opt, &bound.samples, config)
                    .execute_with_opts(
                        query,
                        ExecOpts {
                            threads,
                            columnar: Some(columnar),
                            tracer,
                            ..Default::default()
                        },
                    )
                    .unwrap()
            };
            let off = run_with(Tracer::disabled());
            let tracer = Tracer::enabled();
            let on = run_with(tracer.clone());
            let ctx = format!("{label}: threads={threads} columnar={columnar}");
            assert_rowsets_bit_identical(&off.run.rows, &on.run.rows, &ctx);
            assert_eq!(
                trajectory_digest(&off.run),
                trajectory_digest(&on.run),
                "{ctx}: tracing changed the mid-query trajectory"
            );
            assert_aggs_equivalent(&off.run.agg, &on.run.agg, &ctx);
            let trace = tracer.finish();
            assert!(
                trace.count(names::MIDQUERY_RUN) >= 1,
                "{ctx}: no midquery.run span recorded"
            );
            assert!(
                trace.count(names::MIDQUERY_SEGMENT) >= 1,
                "{ctx}: no midquery.segment span recorded"
            );
            if query.num_relations() >= 3 {
                assert_eq!(
                    trace.count(names::MIDQUERY_SUSPEND),
                    on.run.report.stats.suspensions,
                    "{ctx}: one suspend span per suspension"
                );
            }
        }
    }
}

#[test]
fn ott_mid_query_tracing_invariance() {
    let bound = ott_bound();
    let q = ott_query(&bound.db, &[0i64, 0, 0, 1]).unwrap();
    check_tracing_invariance(&bound, &q, "ott[0,0,0,1]");
}

#[test]
fn tpch_mid_query_tracing_invariance() {
    let bound = tpch_bound();
    let mut rng = derive_rng_indexed(11, "midquery-tpch-trace", 2);
    let q = tpch::instantiate(&bound.db, "q5", &mut rng).unwrap();
    check_tracing_invariance(&bound, &q, "tpch/q5");
}

#[test]
fn ott_mid_query_columnar_conformance() {
    let bound = ott_bound();
    for consts in [vec![0i64, 0, 0, 1], vec![0, 1, 0, 1, 0]] {
        let q = ott_query(&bound.db, &consts).unwrap();
        check_columnar_conformance(&bound, &q, &format!("ott{consts:?}"));
    }
}

#[test]
fn tpch_mid_query_columnar_conformance() {
    let bound = tpch_bound();
    for name in ["q5", "q9"] {
        let mut rng = derive_rng_indexed(11, "midquery-tpch", 2);
        let q = tpch::instantiate(&bound.db, name, &mut rng).unwrap();
        check_columnar_conformance(&bound, &q, &format!("tpch/{name}"));
    }
}

#[test]
fn tpcds_mid_query_columnar_conformance() {
    let bound = tpcds_bound();
    for name in ["q3", "q50p"] {
        let mut rng = derive_rng_indexed(11, "midquery-tpcds", 2);
        let q = tpcds::instantiate(&bound.db, name, &mut rng).unwrap();
        check_columnar_conformance(&bound, &q, &format!("tpcds/{name}"));
    }
}

#[test]
fn ott_mid_query_conformance() {
    let bound = ott_bound();
    for consts in [
        vec![0i64, 0, 0, 0],
        vec![0, 0, 0, 1],
        vec![0, 1, 0, 1, 0],
        vec![0, 0, 0, 0, 0],
    ] {
        let q = ott_query(&bound.db, &consts).unwrap();
        check_conformance(&bound, &q, &format!("ott{consts:?}"));
    }
}

#[test]
fn ott_mid_query_replay_conformance() {
    let bound = ott_bound();
    for consts in [vec![0i64, 0, 0, 1], vec![0, 0, 0, 0, 0]] {
        let q = ott_query(&bound.db, &consts).unwrap();
        check_replay_conformance(&bound, &q, &format!("ott{consts:?}"));
    }
}

#[test]
fn tpch_mid_query_conformance() {
    let bound = tpch_bound();
    // q5/q9 multi-join shapes; q8 is a hard template (correlated
    // conjunctions the native optimizer misestimates).
    for name in ["q5", "q8", "q9"] {
        let mut rng = derive_rng_indexed(11, "midquery-tpch", 0);
        let q = tpch::instantiate(&bound.db, name, &mut rng).unwrap();
        check_conformance(&bound, &q, &format!("tpch/{name}"));
    }
}

#[test]
fn tpch_mid_query_replay_conformance() {
    let bound = tpch_bound();
    let mut rng = derive_rng_indexed(11, "midquery-tpch", 1);
    let q = tpch::instantiate(&bound.db, "q8", &mut rng).unwrap();
    check_replay_conformance(&bound, &q, "tpch/q8");
}

#[test]
fn tpcds_mid_query_conformance() {
    let bound = tpcds_bound();
    // q25/q29 are the widest sale→return→sale joins; q50p is the paper's
    // hand-tweaked hard variant; q3 a well-estimated baseline.
    for name in ["q3", "q25", "q50p"] {
        let mut rng = derive_rng_indexed(11, "midquery-tpcds", 0);
        let q = tpcds::instantiate(&bound.db, name, &mut rng).unwrap();
        check_conformance(&bound, &q, &format!("tpcds/{name}"));
    }
}

#[test]
fn tpcds_mid_query_replay_conformance() {
    let bound = tpcds_bound();
    let mut rng = derive_rng_indexed(11, "midquery-tpcds", 1);
    let q = tpcds::instantiate(&bound.db, "q50p", &mut rng).unwrap();
    check_replay_conformance(&bound, &q, "tpcds/q50p");
}

/// A suspended query whose remainder replans to the same plan resumes
/// with zero extra executor work: drive Γ to an exact fixpoint, execute
/// mid-query from it, and demand straight-through metrics to the row.
#[test]
fn same_plan_resume_is_free() {
    let bound = ott_bound();
    let opt = Optimizer::new(&bound.db, &bound.stats);
    let exec = Executor::with_opts(&bound.db, ExecOpts::serial());
    let q = ott_query(&bound.db, &[0, 0, 0, 0]).unwrap();

    let mut gamma = reopt::optimizer::CardOverrides::new();
    let mut plan = opt.optimize_with(&q, &gamma).unwrap().plan;
    for _ in 0..8 {
        for (set, rows) in exec.run_traced(&q, &plan).unwrap().node_cards {
            gamma.insert_exact(set, rows as f64);
        }
        let next = opt.optimize_with(&q, &gamma).unwrap().plan;
        if next.same_structure(&plan) {
            break;
        }
        plan = next;
    }

    let base = exec.run_traced(&q, &plan).unwrap();
    let mid = execute_mid_query(
        &bound.db,
        &opt,
        &q,
        &plan,
        MidQueryOpts {
            gamma,
            exec: ExecOpts::serial(),
            replan_discrepancy: None,
            ..MidQueryOpts::new()
        },
    )
    .unwrap();
    assert_eq!(mid.report.stats.plan_switches, 0, "fixture must not switch");
    assert!(mid.report.stats.suspensions > 0);
    assert_eq!(mid.metrics.rows_scanned, base.metrics.rows_scanned);
    assert_eq!(mid.metrics.rows_produced, base.metrics.rows_produced);
    assert_eq!(mid.metrics.index_probes, base.metrics.index_probes);
    assert!(mid.report.stats.splices > 0);
}
