//! Property-based tests over the whole engine: randomized databases and
//! queries, with differential checking across plan shapes and the
//! re-optimization loop.

use proptest::prelude::*;

use reopt::common::{ColId, RelSet, TableId};
use reopt::core::ReOptimizer;
use reopt::executor::execute_plan;
use reopt::optimizer::{
    CardEstConfig, CardOverrides, CardinalityEstimator, OperatorSet, Optimizer, OptimizerConfig,
};
use reopt::plan::query::ColRef;
use reopt::plan::{Predicate, Query, QueryBuilder};
use reopt::sampling::{SampleConfig, SampleStore};
use reopt::stats::{analyze_database, AnalyzeOpts};
use reopt::storage::{Column, ColumnDef, Database, LogicalType, Table, TableSchema};

/// A randomized table spec: row count, key domain, value correlation.
#[derive(Debug, Clone)]
struct TableSpec {
    rows: usize,
    domain: i64,
    correlated: bool,
}

fn table_spec() -> impl Strategy<Value = TableSpec> {
    (20usize..400, 2i64..50, any::<bool>()).prop_map(|(rows, domain, correlated)| TableSpec {
        rows,
        domain,
        correlated,
    })
}

/// A randomized chain query over 2–4 tables with optional eq predicates.
#[derive(Debug, Clone)]
struct QuerySpec {
    tables: Vec<TableSpec>,
    /// Per-relation optional equality constant on column a.
    filters: Vec<Option<i64>>,
}

fn query_spec() -> impl Strategy<Value = QuerySpec> {
    (2usize..=4)
        .prop_flat_map(|k| {
            (
                proptest::collection::vec(table_spec(), k),
                proptest::collection::vec(proptest::option::of(0i64..20), k),
            )
        })
        .prop_map(|(tables, filters)| QuerySpec { tables, filters })
}

fn build_db(spec: &QuerySpec, seed: u64) -> Database {
    use rand::RngExt;
    let mut db = Database::new();
    for (t, ts) in spec.tables.iter().enumerate() {
        let mut rng = reopt::common::rng::derive_rng_indexed(seed, "prop-table", t as u64);
        let a: Vec<i64> = (0..ts.rows)
            .map(|_| rng.random_range(0..ts.domain))
            .collect();
        let b: Vec<i64> = if ts.correlated {
            a.clone() // OTT-style perfect correlation
        } else {
            (0..ts.rows)
                .map(|_| rng.random_range(0..ts.domain))
                .collect()
        };
        db.add_table_with(|id| {
            let schema = TableSchema::new(vec![
                ColumnDef::new("a", LogicalType::Int),
                ColumnDef::new("b", LogicalType::Int),
            ])?;
            let mut tbl = Table::new(
                id,
                format!("t{t}"),
                schema,
                vec![
                    Column::from_i64(LogicalType::Int, a.clone()),
                    Column::from_i64(LogicalType::Int, b.clone()),
                ],
            )?;
            tbl.create_index(ColId::new(0))?;
            tbl.create_index(ColId::new(1))?;
            Ok(tbl)
        })
        .unwrap();
    }
    db
}

fn build_query(spec: &QuerySpec) -> Query {
    let mut qb = QueryBuilder::new();
    let rels: Vec<_> = (0..spec.tables.len())
        .map(|i| qb.add_relation(TableId::from(i)))
        .collect();
    for (i, f) in spec.filters.iter().enumerate() {
        if let Some(c) = f {
            qb.add_predicate(Predicate::eq(rels[i], ColId::new(0), *c));
        }
    }
    for w in rels.windows(2) {
        qb.add_join(
            ColRef::new(w[0], ColId::new(1)),
            ColRef::new(w[1], ColId::new(1)),
        );
    }
    qb.build()
}

/// Reference join cardinality via a straightforward fold over hash maps.
fn reference_cardinality(db: &Database, spec: &QuerySpec) -> u64 {
    // Filtered b-column multiset of table 0.
    let filtered: Vec<Vec<i64>> = (0..spec.tables.len())
        .map(|t| {
            let table = db.table(TableId::from(t)).unwrap();
            let a = table.column(ColId::new(0)).unwrap().data();
            let b = table.column(ColId::new(1)).unwrap().data();
            a.iter()
                .zip(b)
                .filter(|(av, _)| spec.filters[t].is_none_or(|c| **av == c))
                .map(|(_, bv)| *bv)
                .collect()
        })
        .collect();
    // Chain join on b: count per key iteratively.
    let mut counts: std::collections::HashMap<i64, u64> = std::collections::HashMap::new();
    for &v in &filtered[0] {
        *counts.entry(v).or_insert(0) += 1;
    }
    for side in &filtered[1..] {
        let mut side_counts: std::collections::HashMap<i64, u64> = std::collections::HashMap::new();
        for &v in side {
            *side_counts.entry(v).or_insert(0) += 1;
        }
        counts = counts
            .into_iter()
            .filter_map(|(k, c)| side_counts.get(&k).map(|sc| (k, c * sc)))
            .collect();
    }
    counts.values().sum()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// The optimizer's chosen plan computes exactly the reference join
    /// cardinality, whatever the data distribution and filters.
    #[test]
    fn optimizer_plan_matches_reference(spec in query_spec(), seed in 0u64..1000) {
        let db = build_db(&spec, seed);
        let q = build_query(&spec);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let opt = Optimizer::new(&db, &stats);
        let planned = opt.optimize(&q).unwrap();
        let got = execute_plan(&db, &q, &planned.plan).unwrap().join_rows;
        let expected = reference_cardinality(&db, &spec);
        prop_assert_eq!(got, expected);
    }

    /// All operator subsets agree on the result.
    #[test]
    fn operator_choice_is_semantically_invisible(spec in query_spec(), seed in 0u64..1000) {
        let db = build_db(&spec, seed);
        let q = build_query(&spec);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let mut counts = Vec::new();
        for ops in [
            OperatorSet { hash: true, merge: false, nested_loop: false, index_nested: false, index_scan: false },
            OperatorSet { hash: false, merge: true, nested_loop: false, index_nested: false, index_scan: true },
            OperatorSet { hash: false, merge: false, nested_loop: true, index_nested: false, index_scan: false },
            OperatorSet { hash: false, merge: false, nested_loop: true, index_nested: true, index_scan: true },
        ] {
            let cfg = OptimizerConfig { operators: ops, ..OptimizerConfig::postgres_like() };
            let opt = Optimizer::with_config(&db, &stats, cfg);
            let planned = opt.optimize(&q).unwrap();
            counts.push(execute_plan(&db, &q, &planned.plan).unwrap().join_rows);
        }
        prop_assert!(counts.windows(2).all(|w| w[0] == w[1]), "{:?}", counts);
    }

    /// Re-optimization never changes the result, always terminates, and
    /// the final plan is cheapest under the final Γ (Theorem 5).
    #[test]
    fn reopt_loop_invariants(spec in query_spec(), seed in 0u64..1000) {
        let db = build_db(&spec, seed);
        let q = build_query(&spec);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let samples = SampleStore::build(&db, SampleConfig {
            ratio: 0.3, // small tables need a generous ratio
            ..Default::default()
        }).unwrap();
        let opt = Optimizer::new(&db, &stats);
        let re = ReOptimizer::new(&opt, &samples);
        let report = re.run(&q).unwrap();
        prop_assert!(report.converged);
        report.verify_theorem2().map_err(TestCaseError::fail)?;
        let orig = execute_plan(&db, &q, &report.rounds[0].plan).unwrap().join_rows;
        let fin = execute_plan(&db, &q, &report.final_plan).unwrap().join_rows;
        prop_assert_eq!(orig, fin);
        let (final_cost, per_round) = re.verify_final_optimality(&q, &report).unwrap();
        for c in per_round {
            prop_assert!(final_cost <= c * (1.0 + 1e-9));
        }
    }

    /// Γ overrides are respected verbatim by the estimator.
    #[test]
    fn estimator_honors_overrides(spec in query_spec(), seed in 0u64..1000, rows in 0.0f64..1e6) {
        let db = build_db(&spec, seed);
        let q = build_query(&spec);
        let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
        let mut gamma = CardOverrides::new();
        let all = RelSet::first_n(q.num_relations());
        gamma.insert(all, rows);
        let mut est = CardinalityEstimator::new(&db, &stats, &q, &gamma, &CardEstConfig::default()).unwrap();
        prop_assert_eq!(est.rows(all), rows);
    }
}
