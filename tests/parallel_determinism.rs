//! The parallel-executor contract: partition-parallel execution at any
//! thread count is **bit-identical** to serial execution — same `RowSet`
//! contents, same `node_cards` traces, same validated Δ, same
//! re-optimization trajectory and chosen plan — on the OTT and TPC-H
//! workloads, including the `SubtreeCache` replay path. Parallelism may
//! only buy wall-clock, never change an answer.

use reopt::common::rng::derive_rng_indexed;
use reopt::core::{ReOptConfig, ReOptimizer, ReoptReport};
use reopt::executor::{ExecOpts, Executor, RowSet};
use reopt::optimizer::Optimizer;
use reopt::sampling::{
    validate_plan, validate_plan_cached, SampleConfig, SampleRunCache, SampleStore, ValidationOpts,
};
use reopt::stats::{analyze_database, AnalyzeOpts, DatabaseStats};
use reopt::storage::Database;
use reopt::workloads::ott::{build_ott_database, ott_query, recommended_sample_ratio, OttConfig};
use reopt::workloads::tpch::{build_tpch_database, instantiate, TpchConfig};

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

struct Bound {
    db: Database,
    stats: DatabaseStats,
    samples: SampleStore,
}

fn ott_bound() -> Bound {
    let config = OttConfig {
        rows_per_value: 20,
        ..Default::default()
    };
    let db = build_ott_database(&config).unwrap();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(
        &db,
        SampleConfig {
            ratio: recommended_sample_ratio(&config),
            ..Default::default()
        },
    )
    .unwrap();
    Bound { db, stats, samples }
}

fn tpch_bound() -> Bound {
    let db = build_tpch_database(&TpchConfig {
        scale: 0.005,
        ..Default::default()
    })
    .unwrap();
    let stats = analyze_database(&db, &AnalyzeOpts::default()).unwrap();
    let samples = SampleStore::build(&db, SampleConfig::default()).unwrap();
    Bound { db, stats, samples }
}

fn assert_rowsets_identical(a: &RowSet, b: &RowSet, label: &str) {
    assert_eq!(a.rels(), b.rels(), "{label}: relation columns");
    assert_eq!(a.len(), b.len(), "{label}: cardinality");
    for &rel in a.rels() {
        assert_eq!(
            a.rowids(rel).unwrap(),
            b.rowids(rel).unwrap(),
            "{label}: rowids of {rel}"
        );
    }
}

/// Everything replay-relevant in a report, timings stripped.
fn replay_digest(report: &ReoptReport) -> (Vec<u64>, u64, bool, Vec<(u64, u64)>) {
    let rounds = report.rounds.iter().map(|r| r.plan.fingerprint()).collect();
    let mut gamma: Vec<(u64, u64)> = report
        .gamma
        .iter()
        .map(|(set, rows)| (set.mask(), rows.to_bits()))
        .collect();
    gamma.sort_unstable();
    (
        rounds,
        report.final_plan.fingerprint(),
        report.converged,
        gamma,
    )
}

/// Sorted bit-exact view of a validated Δ.
fn delta_bits(v: &reopt::sampling::Validation) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = v
        .delta
        .iter()
        .map(|(set, rows)| (set.mask(), rows.to_bits()))
        .collect();
    out.sort_unstable();
    out
}

/// Full runs, traced runs, and cached (SubtreeCache) dry-runs over one
/// (query, plan) pair must be bit-identical at every thread count.
fn check_execution_invariance(bound: &Bound, query: &reopt::plan::Query, label: &str) {
    // A deterministic, repaired plan to execute: the serial loop's answer.
    let opt = Optimizer::new(&bound.db, &bound.stats);
    let re = ReOptimizer::with_config(&opt, &bound.samples, ReOptConfig::with_threads(1));
    let plan = re.run(query).unwrap().final_plan;

    let serial = Executor::with_opts(&bound.db, ExecOpts::serial());
    let (base_rows, base_metrics) = serial.run_rowset(query, &plan).unwrap();
    let base_trace = serial.run_traced(query, &plan).unwrap().node_cards;

    // The SubtreeCache replay path on the *samples* (its production home):
    // run once cold, once fully cached, per thread count.
    let sample_exec = |threads: usize| {
        let exec = Executor::with_opts(bound.samples.database(), ExecOpts::with_threads(threads));
        let mut cache = SampleRunCache::new();
        let cold = exec.run_traced_cached(query, &plan, &mut cache).unwrap();
        let warm = exec.run_traced_cached(query, &plan, &mut cache).unwrap();
        assert_eq!(
            cold.node_cards, warm.node_cards,
            "{label}: cached replay trace diverged at threads={threads}"
        );
        assert!(cache.hits() > 0, "{label}: second dry-run never hit");
        (cold.rows, cold.node_cards)
    };
    let (base_sample_rows, base_sample_trace) = sample_exec(1);

    for threads in THREAD_COUNTS {
        let exec = Executor::with_opts(&bound.db, ExecOpts::with_threads(threads));
        let (rows, metrics) = exec.run_rowset(query, &plan).unwrap();
        assert_rowsets_identical(&base_rows, &rows, &format!("{label} threads={threads}"));
        let traced = exec.run_traced(query, &plan).unwrap();
        assert_eq!(
            base_trace, traced.node_cards,
            "{label}: trace diverged at threads={threads}"
        );
        assert_eq!(metrics.rows_scanned, base_metrics.rows_scanned, "{label}");
        assert_eq!(metrics.rows_produced, base_metrics.rows_produced, "{label}");

        let (sample_rows, sample_trace) = sample_exec(threads);
        assert_rowsets_identical(
            &base_sample_rows,
            &sample_rows,
            &format!("{label} sample threads={threads}"),
        );
        assert_eq!(base_sample_trace, sample_trace, "{label}: sample trace");
    }
}

/// Validated Δ and the whole re-optimization trajectory must be
/// bit-identical at every thread count.
fn check_reopt_invariance(bound: &Bound, query: &reopt::plan::Query, label: &str) {
    let opt = Optimizer::new(&bound.db, &bound.stats);
    let serial_re = ReOptimizer::with_config(&opt, &bound.samples, ReOptConfig::with_threads(1));
    let base_report = serial_re.run(query).unwrap();
    let base_digest = replay_digest(&base_report);
    let serial_opts = ValidationOpts {
        threads: 1,
        ..Default::default()
    };
    let base_delta = delta_bits(
        &validate_plan(query, &base_report.final_plan, &bound.samples, &serial_opts).unwrap(),
    );

    for threads in THREAD_COUNTS {
        let opts = ValidationOpts {
            threads,
            ..Default::default()
        };
        // From-scratch validation.
        let v = validate_plan(query, &base_report.final_plan, &bound.samples, &opts).unwrap();
        assert_eq!(
            base_delta,
            delta_bits(&v),
            "{label}: Δ at threads={threads}"
        );
        // Cached validation (the incremental loop's path).
        let mut cache = SampleRunCache::new();
        let vc = validate_plan_cached(
            query,
            &base_report.final_plan,
            &bound.samples,
            &opts,
            &mut cache,
        )
        .unwrap();
        assert_eq!(base_delta, delta_bits(&vc), "{label}: cached Δ");

        // The whole loop: same rounds, same plans, same Γ, same winner.
        let re = ReOptimizer::with_config(&opt, &bound.samples, ReOptConfig::with_threads(threads));
        let report = re.run(query).unwrap();
        assert_eq!(
            base_digest,
            replay_digest(&report),
            "{label}: trajectory diverged at threads={threads}"
        );
    }
}

/// Cross-engine invariance: columnar on vs off must produce bit-identical
/// rows, traces, Δ, and re-optimization trajectories — at serial and
/// parallel thread counts. The engine knob, like the thread knob, may
/// only buy wall-clock.
fn check_columnar_invariance(bound: &Bound, query: &reopt::plan::Query, label: &str) {
    let opt = Optimizer::new(&bound.db, &bound.stats);
    let re = ReOptimizer::with_config(&opt, &bound.samples, ReOptConfig::with_threads(1));
    let plan = re.run(query).unwrap().final_plan;

    for threads in [1usize, 4] {
        let engine = |columnar: bool| {
            Executor::with_opts(
                &bound.db,
                ExecOpts {
                    threads,
                    columnar: Some(columnar),
                    ..Default::default()
                },
            )
        };
        let (row_rows, row_m) = engine(false).run_rowset(query, &plan).unwrap();
        let (col_rows, col_m) = engine(true).run_rowset(query, &plan).unwrap();
        assert_rowsets_identical(
            &row_rows,
            &col_rows,
            &format!("{label} columnar threads={threads}"),
        );
        let row_trace = engine(false).run_traced(query, &plan).unwrap().node_cards;
        let col_trace = engine(true).run_traced(query, &plan).unwrap().node_cards;
        assert_eq!(
            row_trace, col_trace,
            "{label}: cross-engine trace diverged at threads={threads}"
        );
        assert_eq!(row_m.rows_scanned, col_m.rows_scanned, "{label}");
        assert_eq!(row_m.rows_produced, col_m.rows_produced, "{label}");
        assert_eq!(row_m.batches_processed, 0, "{label}: row engine batched");

        // Validation: Δ must not depend on the engine.
        let vopts = |columnar: bool| ValidationOpts {
            threads,
            columnar: Some(columnar),
            ..Default::default()
        };
        let row_v = validate_plan(query, &plan, &bound.samples, &vopts(false)).unwrap();
        let col_v = validate_plan(query, &plan, &bound.samples, &vopts(true)).unwrap();
        assert_eq!(
            delta_bits(&row_v),
            delta_bits(&col_v),
            "{label}: Δ diverged across engines at threads={threads}"
        );

        // The whole loop: identical trajectory, plans, and Γ either way.
        let config = |columnar: bool| {
            let mut c = ReOptConfig::with_threads(threads);
            c.validation.columnar = Some(columnar);
            c
        };
        let row_report = ReOptimizer::with_config(&opt, &bound.samples, config(false))
            .run(query)
            .unwrap();
        let col_report = ReOptimizer::with_config(&opt, &bound.samples, config(true))
            .run(query)
            .unwrap();
        assert_eq!(
            replay_digest(&row_report),
            replay_digest(&col_report),
            "{label}: trajectory diverged across engines at threads={threads}"
        );
    }
}

/// Tracing invariance: span recording must be pure observation. Rows,
/// traces, validated Δ, and whole re-optimization trajectories with the
/// tracer on must be bit-identical to the tracer-off runs — at
/// `threads ∈ {1, 4}` under both engines.
fn check_tracing_invariance(bound: &Bound, query: &reopt::plan::Query, label: &str) {
    use reopt::telemetry::{names, Tracer};
    let opt = Optimizer::new(&bound.db, &bound.stats);
    let re = ReOptimizer::with_config(&opt, &bound.samples, ReOptConfig::with_threads(1));
    let plan = re.run(query).unwrap().final_plan;

    for threads in [1usize, 4] {
        for columnar in [false, true] {
            let ctx = format!("{label}: threads={threads} columnar={columnar}");
            let engine = |tracer: Tracer| {
                Executor::with_opts(
                    &bound.db,
                    ExecOpts {
                        threads,
                        columnar: Some(columnar),
                        tracer,
                        ..Default::default()
                    },
                )
            };
            let (off_rows, off_m) = engine(Tracer::disabled()).run_rowset(query, &plan).unwrap();
            let tracer = Tracer::enabled();
            let (on_rows, on_m) = engine(tracer.clone()).run_rowset(query, &plan).unwrap();
            assert_rowsets_identical(&off_rows, &on_rows, &ctx);
            assert_eq!(off_m.rows_scanned, on_m.rows_scanned, "{ctx}");
            assert_eq!(off_m.rows_produced, on_m.rows_produced, "{ctx}");
            let trace = tracer.finish();
            // Every executed node gets an exec.operator span. Index-nested
            // inners are probed, not executed standalone, so the count is
            // plan-shaped: at least one per join + leftmost scan, at most
            // one per node.
            let ops = trace.count(names::EXEC_OPERATOR);
            assert!(
                (query.num_relations()..2 * query.num_relations()).contains(&ops),
                "{ctx}: {ops} operator spans for {} relations",
                query.num_relations()
            );
            // The root operator's span reports the true output cardinality.
            let root = trace
                .spans()
                .iter()
                .find(|s| {
                    s.name == names::EXEC_OPERATOR
                        && s.attr_u64("node") == Some(plan.relset().mask())
                })
                .unwrap_or_else(|| panic!("{ctx}: no root operator span"));
            assert_eq!(
                root.attr_u64("rows"),
                Some(off_rows.len() as u64),
                "{ctx}: root span rows"
            );

            // Validation: Δ must not depend on the tracer.
            let vopts = |tracer: Tracer| ValidationOpts {
                threads,
                columnar: Some(columnar),
                tracer,
                ..Default::default()
            };
            let off_v =
                validate_plan(query, &plan, &bound.samples, &vopts(Tracer::disabled())).unwrap();
            let vtracer = Tracer::enabled();
            let on_v =
                validate_plan(query, &plan, &bound.samples, &vopts(vtracer.clone())).unwrap();
            assert_eq!(
                delta_bits(&off_v),
                delta_bits(&on_v),
                "{ctx}: Δ diverged under tracing"
            );
            assert_eq!(
                vtracer.finish().count(names::SAMPLING_DRY_RUN),
                1,
                "{ctx}: dry-run span"
            );

            // The whole loop: identical trajectory with and without spans.
            let mut config = ReOptConfig::with_threads(threads);
            config.validation.columnar = Some(columnar);
            let off_report = ReOptimizer::with_config(&opt, &bound.samples, config.clone())
                .run(query)
                .unwrap();
            let ltracer = Tracer::enabled();
            let on_report = ReOptimizer::with_config(&opt, &bound.samples, config)
                .run_traced(query, &ltracer)
                .unwrap();
            assert_eq!(
                replay_digest(&off_report),
                replay_digest(&on_report),
                "{ctx}: trajectory diverged under tracing"
            );
            let ltrace = ltracer.finish();
            assert_eq!(ltrace.count(names::REOPT_LOOP), 1, "{ctx}");
            assert_eq!(
                ltrace.count(names::REOPT_ROUND),
                on_report.rounds.len(),
                "{ctx}: one round span per round"
            );
        }
    }
}

#[test]
fn ott_tracing_is_bit_identical() {
    let bound = ott_bound();
    let q = ott_query(&bound.db, &[0i64, 0, 0, 1]).unwrap();
    check_tracing_invariance(&bound, &q, "ott[0,0,0,1]");
}

#[test]
fn tpch_tracing_is_bit_identical() {
    let bound = tpch_bound();
    let mut rng = derive_rng_indexed(7, "parallel-determinism-trace", 2);
    let q = instantiate(&bound.db, "q5", &mut rng).unwrap();
    check_tracing_invariance(&bound, &q, "tpch/q5");
}

#[test]
fn ott_columnar_engine_is_bit_identical() {
    let bound = ott_bound();
    for consts in [vec![0i64, 0, 0, 0], vec![0, 0, 0, 1]] {
        let q = ott_query(&bound.db, &consts).unwrap();
        check_columnar_invariance(&bound, &q, &format!("ott{consts:?}"));
    }
}

#[test]
fn tpch_columnar_engine_is_bit_identical() {
    let bound = tpch_bound();
    let mut rng = derive_rng_indexed(7, "parallel-determinism", 2);
    for name in ["q5", "q8"] {
        let q = instantiate(&bound.db, name, &mut rng).unwrap();
        check_columnar_invariance(&bound, &q, &format!("tpch/{name}"));
    }
}

#[test]
fn ott_execution_is_thread_count_invariant() {
    let bound = ott_bound();
    // Non-empty 4-chain (the M^4 blow-up exercises real join volume) and
    // the empty-edge repair fixture.
    for consts in [vec![0i64, 0, 0, 0], vec![0, 0, 0, 1]] {
        let q = ott_query(&bound.db, &consts).unwrap();
        check_execution_invariance(&bound, &q, &format!("ott{consts:?}"));
    }
}

#[test]
fn ott_reoptimization_is_thread_count_invariant() {
    let bound = ott_bound();
    for consts in [vec![0i64, 0, 0, 0], vec![0, 0, 0, 1], vec![0, 1, 0, 1, 0]] {
        let q = ott_query(&bound.db, &consts).unwrap();
        check_reopt_invariance(&bound, &q, &format!("ott{consts:?}"));
    }
}

#[test]
fn tpch_execution_is_thread_count_invariant() {
    let bound = tpch_bound();
    let mut rng = derive_rng_indexed(7, "parallel-determinism", 0);
    let q = instantiate(&bound.db, "q8", &mut rng).unwrap();
    check_execution_invariance(&bound, &q, "tpch/q8");
}

#[test]
fn tpch_reoptimization_is_thread_count_invariant() {
    let bound = tpch_bound();
    let mut rng = derive_rng_indexed(7, "parallel-determinism", 1);
    for name in ["q5", "q9"] {
        let q = instantiate(&bound.db, name, &mut rng).unwrap();
        check_reopt_invariance(&bound, &q, &format!("tpch/{name}"));
    }
}
