//! ISSUE acceptance for the telemetry layer: one traced
//! `QueryService::execute` yields a span tree covering admission, every
//! re-optimization round (sampling dry-runs + DP), mid-query suspensions,
//! and per-operator execution; the trace exports as valid Chrome-trace
//! JSON (and JSON lines); and `telemetry_snapshot()` exposes the unified
//! metrics registry with a working latency histogram.

use std::sync::Arc;

use reopt::core::ReOptConfig;
use reopt::sampling::SampleConfig;
use reopt::service::{PlanSource, QueryService, ServiceConfig};
use reopt::stats::AnalyzeOpts;
use reopt::telemetry::names;
use reopt::workloads::ott::{build_ott_database, ott_query, recommended_sample_ratio, OttConfig};
use serde_json::Value;

fn ott() -> OttConfig {
    OttConfig {
        rows_per_value: 12,
        distinct_values: [60, 50, 40, 30, 20, 10],
        ..Default::default()
    }
}

fn service(mid_query: bool, trace: Option<bool>) -> Arc<QueryService> {
    let config = ott();
    let db = Arc::new(build_ott_database(&config).unwrap());
    Arc::new(
        QueryService::from_database(
            db,
            &AnalyzeOpts::default(),
            SampleConfig {
                ratio: recommended_sample_ratio(&config),
                ..Default::default()
            },
            ServiceConfig {
                reopt: ReOptConfig {
                    mid_query,
                    replan_discrepancy: None,
                    ..ReOptConfig::default()
                },
                trace,
                ..Default::default()
            },
        )
        .unwrap(),
    )
}

/// A span by `name` must exist and (transitively) sit under one by
/// `ancestor`.
fn assert_nested(trace: &reopt::telemetry::QueryTrace, ancestor: &str, name: &str) {
    let anc = trace
        .find(ancestor)
        .unwrap_or_else(|| panic!("no {ancestor} span"));
    let mut found = false;
    'outer: for s in trace.spans() {
        if s.name != name {
            continue;
        }
        // Walk parents up to the root.
        let mut cur = s.parent;
        while cur != 0 {
            if cur == anc.id {
                found = true;
                break 'outer;
            }
            match trace.spans().iter().find(|p| p.id == cur) {
                Some(p) => cur = p.parent,
                None => break,
            }
        }
    }
    assert!(found, "no {name} span nested under {ancestor}");
}

#[test]
fn traced_execute_covers_the_whole_pipeline() {
    let svc = service(true, Some(false));
    let q = ott_query(svc.engine().db(), &[0i64, 0, 0, 1, 0]).unwrap();
    let eq = svc.execute_traced(&q).unwrap();
    assert_eq!(eq.response.source, PlanSource::ColdMiss);
    let trace = eq.trace.as_ref().expect("execute_traced returns a trace");

    // The pipeline, one span tree: service → admission → reopt rounds
    // (DP + dry-run) → mid-query (segments, suspends, replans) →
    // per-operator execution.
    assert_eq!(trace.count(names::SERVICE_EXECUTE), 1);
    assert_eq!(trace.count(names::SERVICE_SUBMIT), 1);
    assert_eq!(trace.count(names::SERVICE_ADMISSION), 1);
    assert_eq!(trace.count(names::REOPT_LOOP), 1);
    assert_eq!(
        trace.count(names::REOPT_ROUND),
        eq.response.rounds,
        "one round span per re-optimization round"
    );
    assert_eq!(trace.count(names::OPTIMIZER_DP), eq.response.rounds);
    // The terminal round repeats the previous plan and skips validation,
    // so dry-run spans trail rounds by exactly one on a converged loop.
    assert!(trace.count(names::SAMPLING_DRY_RUN) >= 1);
    assert!(trace.count(names::SAMPLING_DRY_RUN) >= eq.response.rounds - 1);
    assert_eq!(trace.count(names::MIDQUERY_RUN), 1);
    let mq = eq.mid_query.as_ref().unwrap();
    assert!(mq.suspensions >= 1, "5-relation join must suspend");
    assert_eq!(trace.count(names::MIDQUERY_SUSPEND), mq.suspensions);
    assert_eq!(trace.count(names::MIDQUERY_REPLAN), mq.replans);
    assert!(trace.count(names::MIDQUERY_SEGMENT) >= mq.suspensions);
    assert!(trace.count(names::EXEC_OPERATOR) >= q.num_relations());

    // Nesting: everything hangs off the service.execute root.
    assert_nested(trace, names::SERVICE_EXECUTE, names::SERVICE_ADMISSION);
    assert_nested(trace, names::SERVICE_SUBMIT, names::REOPT_ROUND);
    assert_nested(trace, names::REOPT_ROUND, names::SAMPLING_DRY_RUN);
    assert_nested(trace, names::MIDQUERY_RUN, names::EXEC_OPERATOR);
    assert_nested(trace, names::MIDQUERY_SUSPEND, names::MIDQUERY_REPLAN);

    // Spans are sorted by start time and durations are sane.
    let starts: Vec<u64> = trace.spans().iter().map(|s| s.start_us).collect();
    assert!(starts.windows(2).all(|w| w[0] <= w[1]));

    // The rendered tree is a human-readable view of the same spans.
    let tree = trace.render_tree();
    assert!(tree.contains(names::SERVICE_EXECUTE), "{tree}");
    assert!(tree.contains(names::EXEC_OPERATOR), "{tree}");
}

#[test]
fn chrome_trace_export_is_valid_json() {
    let svc = service(false, Some(false));
    let q = ott_query(svc.engine().db(), &[0i64, 0, 0, 1]).unwrap();
    let eq = svc.execute_traced(&q).unwrap();
    let trace = eq.trace.as_ref().unwrap();

    let chrome = trace.to_chrome_trace();
    let doc = serde_json::value_from_str(&chrome).expect("chrome trace parses as JSON");
    let events = match doc.get("traceEvents") {
        Some(Value::Array(events)) => events,
        other => panic!("traceEvents missing or not an array: {other:?}"),
    };
    assert_eq!(events.len(), trace.len());
    for ev in events {
        for key in ["name", "ph", "ts", "dur", "args"] {
            assert!(ev.get(key).is_some(), "event missing {key}");
        }
    }

    let lines = trace.to_json_lines();
    assert_eq!(lines.lines().count(), trace.len());
    for line in lines.lines() {
        serde_json::value_from_str(line).expect("each JSON line parses");
    }
}

#[test]
fn snapshot_exposes_the_unified_registry() {
    let svc = service(true, Some(false));
    let q1 = ott_query(svc.engine().db(), &[0i64, 0, 0, 1]).unwrap();
    let q2 = ott_query(svc.engine().db(), &[0i64, 0, 0, 2]).unwrap();
    svc.execute(&q1).unwrap();
    svc.execute(&q2).unwrap(); // same template: warm hit
    svc.execute(&q1).unwrap();

    let snap = svc.telemetry_snapshot();
    assert_eq!(snap.counter("service.submitted"), 3);
    assert_eq!(snap.counter("service.cold_misses"), 1);
    assert_eq!(snap.counter("service.warm_hits"), 2);
    assert_eq!(snap.counter("reopt.runs"), 1);
    assert!(snap.counter("reopt.rounds") >= 1);
    assert_eq!(snap.counter("exec.queries"), 3);
    assert!(snap.counter("exec.rows_produced") > 0);
    assert!(snap.counter("midquery.suspensions") >= 1);
    assert_eq!(snap.gauge("plan_cache.templates"), Some(1.0));

    // Latency histograms rode along with the counters.
    let submit = snap
        .histograms
        .get("service.submit_us")
        .expect("submit latency histogram");
    assert_eq!(submit.summary.count, 3);
    let rendered = snap.render();
    assert!(rendered.contains("service.submitted"), "{rendered}");
    assert!(rendered.contains("service.submit_us"), "{rendered}");
}

#[test]
fn service_stats_latency_summary_tracks_submissions() {
    let svc = service(false, Some(false));
    for c in 0..5i64 {
        let q = ott_query(svc.engine().db(), &[0, 0, 0, c]).unwrap();
        svc.submit(&q).unwrap();
    }
    let s = svc.stats();
    assert_eq!(s.latency.count, 5);
    assert!(s.latency.p50_us > 0, "{:?}", s.latency);
    assert!(s.latency.p50_us <= s.latency.p95_us);
    assert!(s.latency.p95_us <= s.latency.p99_us);
    assert!(s.latency.p99_us <= s.latency.max_us.max(s.latency.p99_us));
    assert!(s.latency.max_us >= s.latency.mean_us);
}

#[test]
fn tracing_is_off_by_default_and_results_match() {
    let off = service(true, Some(false));
    let on = service(true, Some(true));
    let q = ott_query(off.engine().db(), &[0i64, 0, 0, 1, 0]).unwrap();
    let a = off.execute(&q).unwrap();
    let b = on.execute(&q).unwrap();
    assert!(a.trace.is_none(), "trace recorded with tracing off");
    assert!(b.trace.is_some(), "no trace with tracing on");
    assert_eq!(a.output.join_rows, b.output.join_rows);
    assert_eq!(
        a.response.plan.fingerprint(),
        b.response.plan.fingerprint(),
        "tracing changed the chosen plan"
    );
    assert_eq!(
        a.mid_query.as_ref().unwrap().suspensions,
        b.mid_query.as_ref().unwrap().suspensions,
    );
}
