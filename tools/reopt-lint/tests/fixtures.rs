//! Per-rule fixture tests: each rule fires on its hazard, stays quiet on
//! the safe spelling, and honors its waiver; plus baseline parsing and
//! matching, and a workspace-wide sweep asserting every real waiver in the
//! tree carries a known kind and a non-empty reason.

use reopt_lint::baseline::ParseError;
use reopt_lint::{check, lint_source, scan_waivers, Baseline, Rule, Violation};
use std::path::Path;

/// Lint a fixture as if it were `crates/<crate_name>/src/fixture.rs`.
fn lint(crate_name: &str, source: &str) -> Vec<Violation> {
    lint_source(
        &format!("crates/{crate_name}/src/fixture.rs"),
        crate_name,
        source,
    )
}

fn rules(violations: &[Violation]) -> Vec<Rule> {
    violations.iter().map(|v| v.rule).collect()
}

// ---------------------------------------------------------------- R1

#[test]
fn r1_fires_on_hash_map_iteration_in_result_crate() {
    let src = "fn f() {\n    let table: FxHashMap<u64, u64> = FxHashMap::default();\n    for (k, v) in table.iter() {\n        use_it(k, v);\n    }\n}\n";
    let found = lint("executor", src);
    assert_eq!(rules(&found), vec![Rule::UnorderedIter], "{found:?}");
    assert_eq!(found[0].line, 3);
}

#[test]
fn r1_fires_on_for_loop_over_hash_receiver() {
    let src = "fn f(groups: &FxHashMap<u64, u64>) {\n    for v in groups {\n        use_it(v);\n    }\n}\n";
    let found = lint("core", src);
    assert_eq!(rules(&found), vec![Rule::UnorderedIter], "{found:?}");
}

#[test]
fn r1_quiet_on_btree_map_iteration() {
    let src = "fn f() {\n    let table: BTreeMap<u64, u64> = BTreeMap::new();\n    for (k, v) in table.iter() {\n        use_it(k, v);\n    }\n}\n";
    assert!(lint("executor", src).is_empty());
}

#[test]
fn r1_quiet_on_hash_map_point_lookup() {
    let src = "fn f(table: &FxHashMap<u64, u64>) -> Option<&u64> {\n    table.get(&7)\n}\n";
    assert!(lint("executor", src).is_empty());
}

#[test]
fn r1_does_not_apply_outside_result_producing_crates() {
    let src = "fn f(table: &FxHashMap<u64, u64>) {\n    for v in table.values() {\n        use_it(v);\n    }\n}\n";
    // Analysis post-processes already-emitted results; order can't leak
    // into query output from there.
    assert!(lint("analysis", src).is_empty());
    // The data-bearing crates joined the scope with the ingest refactor.
    assert_eq!(rules(&lint("stats", src)), vec![Rule::UnorderedIter]);
    assert_eq!(rules(&lint("storage", src)), vec![Rule::UnorderedIter]);
    assert_eq!(rules(&lint("sampling", src)), vec![Rule::UnorderedIter]);
}

#[test]
fn r1_waiver_on_preceding_line_suppresses() {
    let src = "fn f(table: &FxHashMap<u64, u64>) {\n    // lint: ordered-ok(results are sorted before emission)\n    for v in table.values() {\n        use_it(v);\n    }\n}\n";
    assert!(lint("executor", src).is_empty());
}

#[test]
fn r1_catches_rustfmt_split_chains() {
    // The receiver sits on the previous line after rustfmt splits a chain.
    let src = "fn f(table: &FxHashMap<u64, u64>) -> Vec<u64> {\n    table\n        .values()\n        .copied()\n        .collect()\n}\n";
    let found = lint("service", src);
    assert_eq!(rules(&found), vec![Rule::UnorderedIter], "{found:?}");
}

// ---------------------------------------------------------------- R2

#[test]
fn r2_fires_on_unwrap_expect_and_macros() {
    let src = "fn f(x: Option<u64>) -> u64 {\n    let a = x.unwrap();\n    let b = x.expect(\"msg\");\n    if a > b { panic!(\"boom\"); }\n    unreachable!()\n}\n";
    let found = lint("plan", src);
    assert_eq!(found.len(), 4, "{found:?}");
    assert!(found.iter().all(|v| v.rule == Rule::Panic));
}

#[test]
fn r2_quiet_on_unwrap_or_family() {
    let src = "fn f(x: Option<u64>) -> u64 {\n    x.unwrap_or(0).max(x.unwrap_or_else(|| 1)).max(x.unwrap_or_default())\n}\n";
    assert!(lint("plan", src).is_empty());
}

#[test]
fn r2_skips_cfg_test_regions() {
    let src = "fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n";
    assert!(lint("plan", src).is_empty());
}

#[test]
fn r2_skips_comments_and_strings() {
    let src = "fn f() -> &'static str {\n    // .unwrap() in a comment is fine\n    \"call .unwrap() on it\"\n}\n";
    assert!(lint("plan", src).is_empty());
}

#[test]
fn r2_waiver_suppresses_with_reason() {
    let src = "fn f(x: Option<u64>) -> u64 {\n    x.unwrap() // lint: panic-ok(constructor invariant: always Some)\n}\n";
    assert!(lint("plan", src).is_empty());
}

#[test]
fn r2_does_not_apply_in_bench() {
    let src = "fn f(x: Option<u64>) -> u64 {\n    x.unwrap()\n}\n";
    assert!(lint("bench", src).is_empty());
}

// ---------------------------------------------------------------- R3

#[test]
fn r3_fires_on_instant_now_and_os_entropy() {
    let src = "fn f() {\n    let t = Instant::now();\n    let s = SystemTime::now();\n}\n";
    let found = lint("sampling", src);
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found.iter().all(|v| v.rule == Rule::WallClock));
}

#[test]
fn r3_waiver_suppresses() {
    let src = "fn f() {\n    let t = Instant::now(); // lint: clock-ok(telemetry only)\n}\n";
    assert!(lint("sampling", src).is_empty());
}

#[test]
fn r3_does_not_apply_in_bench() {
    let src = "fn f() {\n    let t = Instant::now();\n}\n";
    assert!(lint("bench", src).is_empty());
}

// ---------------------------------------------------------------- R4

#[test]
fn r4_every_relaxed_needs_a_waiver() {
    let src = "fn f(c: &AtomicU64) -> u64 {\n    c.load(Ordering::Relaxed)\n}\n";
    let found = lint("common", src);
    assert_eq!(rules(&found), vec![Rule::RelaxedOrdering], "{found:?}");
}

#[test]
fn r4_waived_relaxed_is_fine() {
    let src = "fn f(c: &AtomicU64) -> u64 {\n    // lint: relaxed-ok(telemetry counter, never drives control flow)\n    c.load(Ordering::Relaxed)\n}\n";
    assert!(lint("common", src).is_empty());
}

#[test]
fn r4_quiet_on_stronger_orderings() {
    let src = "fn f(c: &AtomicU64) -> u64 {\n    c.fetch_add(1, Ordering::AcqRel);\n    c.load(Ordering::Acquire)\n}\n";
    assert!(lint("common", src).is_empty());
}

// ---------------------------------------------------------------- R5

#[test]
fn r5_fires_once_not_doubly_as_r2() {
    let src = "fn f(m: &Mutex<u64>) -> u64 {\n    *m.lock().unwrap()\n}\n";
    let found = lint("sampling", src);
    assert_eq!(rules(&found), vec![Rule::LockUnwrap], "{found:?}");
}

#[test]
fn r5_quiet_on_poison_recovering_idiom() {
    let src =
        "fn f(m: &Mutex<u64>) -> u64 {\n    *m.lock().unwrap_or_else(|p| p.into_inner())\n}\n";
    assert!(lint("sampling", src).is_empty());
}

// ------------------------------------------------------- waiver syntax

#[test]
fn unknown_waiver_kind_is_a_violation() {
    let src = "fn f() {\n    // lint: sorted-ok(wrong kind name)\n    let x = 1;\n}\n";
    let found = lint("plan", src);
    assert_eq!(rules(&found), vec![Rule::WaiverSyntax], "{found:?}");
}

#[test]
fn empty_waiver_reason_is_a_violation() {
    let src = "fn f() {\n    // lint: panic-ok()\n    let x = 1;\n}\n";
    let found = lint("plan", src);
    assert_eq!(rules(&found), vec![Rule::WaiverSyntax], "{found:?}");
}

#[test]
fn reasonless_waiver_does_not_suppress() {
    let src = "fn f(x: Option<u64>) -> u64 {\n    x.unwrap() // lint: panic-ok()\n}\n";
    let found = lint("plan", src);
    // Both the un-suppressed panic and the broken waiver are reported.
    assert!(found.iter().any(|v| v.rule == Rule::Panic), "{found:?}");
    assert!(
        found.iter().any(|v| v.rule == Rule::WaiverSyntax),
        "{found:?}"
    );
}

#[test]
fn waivers_in_test_code_are_still_syntax_checked() {
    let src =
        "#[cfg(test)]\nmod tests {\n    // lint: bogus-ok(kind does not exist)\n    fn t() {}\n}\n";
    let found = lint("plan", src);
    assert_eq!(rules(&found), vec![Rule::WaiverSyntax], "{found:?}");
}

// ------------------------------------------------------------ baseline

fn violation(file: &str, rule: Rule) -> Violation {
    Violation {
        file: file.to_string(),
        line: 1,
        rule,
        excerpt: "x".to_string(),
        message: "m".to_string(),
    }
}

#[test]
fn baseline_parses_and_round_trips() {
    let text = "deny = [\"crates/executor\"]\n\n[[entry]]\nfile = \"crates/stats/src/a.rs\"\nrule = \"panic\"\nallowed = 2\nreason = \"legacy\"\n";
    let b = Baseline::parse(text).unwrap();
    assert_eq!(b.deny, vec!["crates/executor"]);
    assert_eq!(b.entries.len(), 1);
    assert_eq!(b.entries[0].allowed, 2);
    let again = Baseline::parse(&b.render()).unwrap();
    assert_eq!(again, b);
}

#[test]
fn baseline_rejects_empty_reason_and_duplicates() {
    let no_reason = "[[entry]]\nfile = \"a.rs\"\nrule = \"panic\"\nallowed = 1\nreason = \"\"\n";
    assert!(matches!(Baseline::parse(no_reason), Err(ParseError { .. })));
    let dup = "[[entry]]\nfile = \"a.rs\"\nrule = \"panic\"\nallowed = 1\nreason = \"x\"\n\n[[entry]]\nfile = \"a.rs\"\nrule = \"panic\"\nallowed = 2\nreason = \"y\"\n";
    assert!(matches!(Baseline::parse(dup), Err(ParseError { .. })));
}

#[test]
fn baseline_absorbs_up_to_allowed_then_rejects() {
    let text = "[[entry]]\nfile = \"crates/stats/src/a.rs\"\nrule = \"panic\"\nallowed = 2\nreason = \"legacy\"\n";
    let b = Baseline::parse(text).unwrap();
    let two = vec![
        violation("crates/stats/src/a.rs", Rule::Panic),
        violation("crates/stats/src/a.rs", Rule::Panic),
    ];
    let outcome = check(&two, &b);
    assert!(outcome.passed(), "{outcome:?}");
    assert_eq!(outcome.baselined, 2);

    let three = vec![
        violation("crates/stats/src/a.rs", Rule::Panic),
        violation("crates/stats/src/a.rs", Rule::Panic),
        violation("crates/stats/src/a.rs", Rule::Panic),
    ];
    let outcome = check(&three, &b);
    assert!(!outcome.passed());
    assert_eq!(outcome.new_violations.len(), 1);
}

#[test]
fn baseline_entry_does_not_cover_other_rule_or_file() {
    let text = "[[entry]]\nfile = \"crates/stats/src/a.rs\"\nrule = \"panic\"\nallowed = 5\nreason = \"legacy\"\n";
    let b = Baseline::parse(text).unwrap();
    let v = vec![
        violation("crates/stats/src/a.rs", Rule::WallClock),
        violation("crates/stats/src/b.rs", Rule::Panic),
    ];
    let outcome = check(&v, &b);
    assert_eq!(outcome.new_violations.len(), 2);
}

#[test]
fn deny_listed_prefixes_reject_baseline_entries() {
    let text = "deny = [\"crates/executor\"]\n\n[[entry]]\nfile = \"crates/executor/src/exec.rs\"\nrule = \"panic\"\nallowed = 1\nreason = \"should not be allowed\"\n";
    let b = Baseline::parse(text).unwrap();
    let outcome = check(&[], &b);
    assert!(!outcome.passed(), "{outcome:?}");
    assert!(!outcome.denied_entries.is_empty());
}

#[test]
fn waiver_syntax_violations_cannot_be_baselined() {
    let text = "[[entry]]\nfile = \"a.rs\"\nrule = \"waiver\"\nallowed = 1\nreason = \"never\"\n";
    assert!(Baseline::parse(text).is_err());
}

// ------------------------------------------------- telemetry crate

#[test]
fn r1_applies_to_the_telemetry_crate() {
    // Trace export and snapshot rendering iterate their maps into
    // user-visible output, so the telemetry crate is held to the same
    // ordered-iteration rule as the result-producing crates.
    let src = "fn f(attrs: &FxHashMap<u64, u64>) {\n    for v in attrs.values() {\n        use_it(v);\n    }\n}\n";
    let found = lint("telemetry", src);
    assert_eq!(rules(&found), vec![Rule::UnorderedIter], "{found:?}");
}

#[test]
fn telemetry_crate_introduces_no_clock_sites() {
    // R3 guard: span timing must flow through `Stopwatch` (the one waived
    // clock site in reopt-common), never through new `Instant::now()` /
    // `SystemTime::now()` reads — so the telemetry crate needs zero
    // clock-ok waivers and produces zero wall-clock findings.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let waivers = scan_waivers(&root).expect("workspace scan");
    for (file, w) in &waivers {
        assert!(
            !(file.starts_with("crates/telemetry") && w.kind == "clock-ok"),
            "{file}:{}: the telemetry crate must not waive a clock site",
            w.line
        );
    }
    let violations = reopt_lint::scan_workspace(&root).expect("workspace scan");
    let clock_hits: Vec<_> = violations
        .iter()
        .filter(|v| v.file.starts_with("crates/telemetry") && v.rule == Rule::WallClock)
        .collect();
    assert!(clock_hits.is_empty(), "{clock_hits:?}");
}

// ---------------------------------------------- real-workspace waivers

#[test]
fn every_workspace_waiver_has_a_known_kind_and_a_reason() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let waivers = scan_waivers(&root).expect("workspace scan");
    assert!(
        !waivers.is_empty(),
        "expected at least the Stopwatch clock-ok waiver"
    );
    for (file, w) in &waivers {
        assert!(
            [
                "ordered-ok",
                "panic-ok",
                "clock-ok",
                "relaxed-ok",
                "lock-ok"
            ]
            .contains(&w.kind.as_str()),
            "{file}:{}: unknown waiver kind `{}`",
            w.line,
            w.kind
        );
        assert!(
            !w.reason.trim().is_empty(),
            "{file}:{}: waiver `{}` has an empty reason",
            w.line,
            w.kind
        );
    }
}
