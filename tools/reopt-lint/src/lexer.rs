//! A minimal Rust lexer: good enough to know, for every source line, which
//! bytes are *code*, which are *comment*, and whether the line lives inside
//! a `#[cfg(test)]` region.
//!
//! This is deliberately not a parser. The rules in [`crate::rules`] are
//! token-pattern checks, so all the lexer must guarantee is:
//!
//! * string / char / raw-string literal *contents* never leak into the code
//!   channel (a `"Instant::now"` inside an error message must not fire R3),
//! * comment text is preserved separately (waivers live in comments),
//! * `#[cfg(test)]` items are recognised and their whole brace-balanced
//!   extent is marked, so test-only code is exempt from every rule.

/// One source line, split into channels.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code with comments removed and literal contents blanked out.
    /// Delimiting quotes are kept so the text stays recognisably a literal.
    pub code: String,
    /// Concatenated comment text of this line (both `//` and `/* */`).
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A lexed source file: one [`Line`] per input line.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth (Rust block comments nest).
    BlockComment(u32),
    Str,
    /// Number of `#` marks that close the raw string.
    RawStr(u32),
    CharLit,
}

/// Lex `source` into per-line code/comment channels and mark
/// `#[cfg(test)]` regions.
pub fn lex(source: &str) -> LexedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut state = State::Code;
    let mut i = 0usize;

    macro_rules! cur {
        () => {
            lines.last_mut().expect("lines starts non-empty")
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(Line::default());
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        cur!().code.push('"');
                        state = State::Str;
                        i += 1;
                    }
                    'r' | 'b'
                        if !prev_is_ident(&chars, i) && raw_str_hashes(&chars, i).is_some() =>
                    {
                        let (hashes, consumed) =
                            raw_str_hashes(&chars, i).expect("checked in guard");
                        cur!().code.push('"');
                        state = State::RawStr(hashes);
                        i += consumed;
                    }
                    'b' if !prev_is_ident(&chars, i) && next == Some('"') => {
                        cur!().code.push('"');
                        state = State::Str;
                        i += 2;
                    }
                    '\'' => {
                        // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                        // `'\n'`, `'\u{1F600}'`). A lifetime is `'` followed
                        // by an identifier NOT closed by another `'`.
                        if next == Some('\\') {
                            cur!().code.push('\'');
                            state = State::CharLit;
                            i += 2; // consume the backslash; next char is escaped
                            if i < chars.len() && chars[i] != '\n' {
                                i += 1; // the escaped character itself
                            }
                        } else if next.is_some_and(|n| n.is_alphanumeric() || n == '_')
                            && chars.get(i + 2).copied() != Some('\'')
                        {
                            cur!().code.push('\'');
                            i += 1; // lifetime: stay in Code
                        } else {
                            cur!().code.push('\'');
                            state = State::CharLit;
                            i += 1;
                        }
                    }
                    _ => {
                        cur!().code.push(c);
                        i += 1;
                    }
                }
            }
            State::LineComment => {
                cur!().comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur!().comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped char (may be `"` or `\`) — unless it
                    // is a line-continuation newline, which the top of the
                    // loop must see to keep line numbers in sync.
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else if c == '"' {
                    cur!().code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1; // literal content: blanked
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    cur!().code.push('"');
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\'' {
                    cur!().code.push('\'');
                    state = State::Code;
                }
                i += 1;
            }
        }
    }

    let mut file = LexedFile { lines };
    mark_test_regions(&mut file);
    file
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If position `i` starts a raw string (`r"`, `r#"`, `br##"`...), return
/// (number of hashes, chars consumed up to and including the opening `"`).
fn raw_str_hashes(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j - i + 1))
    } else {
        None
    }
}

/// Whether the `"` at `i` is followed by `hashes` `#` marks.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Mark every line belonging to a `#[cfg(test)]` item. The attribute is
/// matched textually on the code channel; the item's extent runs from the
/// attribute to the matching close of the first `{` that follows (or to the
/// terminating `;` for `mod tests;` forms, which have no body here).
fn mark_test_regions(file: &mut LexedFile) {
    let n = file.lines.len();
    let mut i = 0usize;
    while i < n {
        // `cfg(test)` (not `cfg(not(test))`, which marks *non*-test code).
        let is_test_attr = file.lines[i].code.contains("cfg(test)");
        if !is_test_attr {
            i += 1;
            continue;
        }
        // Walk forward to the first `{` (start of the item body), then to
        // its matching `}`. Everything in between is test-only.
        let mut depth = 0i64;
        let mut opened = false;
        let mut j = i;
        'outer: while j < n {
            file.lines[j].in_test = true;
            let line_code: Vec<char> = file.lines[j].code.chars().collect();
            for &ch in &line_code {
                match ch {
                    '{' => {
                        opened = true;
                        depth += 1;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            break 'outer;
                        }
                    }
                    ';' if !opened => break 'outer, // `mod tests;` — no body
                    _ => {}
                }
            }
            j += 1;
        }
        i = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let src = "let x = \"Instant::now\"; // Instant::now in comment\nlet y = 1;\n";
        let f = lex(src);
        assert!(!f.lines[0].code.contains("Instant::now"));
        assert!(f.lines[0].comment.contains("Instant::now"));
        assert!(f.lines[0].code.contains("let x = \"\""));
        assert_eq!(f.lines[1].code, "let y = 1;");
    }

    #[test]
    fn raw_strings_and_chars() {
        let src =
            "let s = r#\"a \"quoted\" unwrap()\"#; let c = '\\n'; let l: &'static str = \"\";";
        let f = lex(src);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("'static"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a /* one /* two */ still */ b\n/* open\n unwrap() \n*/ c\n";
        let f = lex(src);
        assert_eq!(f.lines[0].code.trim_start().replace("  ", " "), "a b");
        assert!(f.lines[2].code.is_empty());
        assert!(f.lines[2].comment.contains("unwrap"));
        assert_eq!(f.lines[3].code.trim(), "c");
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let f = lex(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_declaration_only_mod() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() {}\n";
        let f = lex(src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }
}
