//! The checked-in violation baseline (`lint-baseline.toml`).
//!
//! The baseline grandfathers pre-existing violations so the gate is
//! zero-new-violations from day one: a (file, rule) group may carry at most
//! `allowed` un-waived findings, and every entry must say why it is still
//! allowed to exist. The `deny` list is the burn-down ratchet — path
//! prefixes (whole crates) whose baseline entries are *forbidden*, so a
//! crate that has been cleaned can never silently regress into the
//! baseline.
//!
//! Hand-parsed TOML subset (no registry deps): `#` comments, one
//! single-line `deny = [ "…", … ]` array, and `[[entry]]` tables of
//! `string` / integer keys.

use crate::rules::Rule;
use std::fmt;

/// One grandfathered (file, rule) group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Repo-relative path, forward slashes.
    pub file: String,
    pub rule: Rule,
    /// Maximum number of un-waived violations tolerated.
    pub allowed: usize,
    /// Why the debt is still carried. Must be non-empty.
    pub reason: String,
}

/// The parsed baseline file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Path prefixes for which baseline entries are forbidden.
    pub deny: Vec<String>,
    pub entries: Vec<BaselineEntry>,
}

/// A baseline parse failure, with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl Baseline {
    /// Look up the entry for a (file, rule) group.
    pub fn entry(&self, file: &str, rule: Rule) -> Option<&BaselineEntry> {
        self.entries
            .iter()
            .find(|e| e.file == file && e.rule == rule)
    }

    /// Whether `file` falls under a burned-down (deny-listed) prefix.
    pub fn denied(&self, file: &str) -> bool {
        self.deny.iter().any(|p| file.starts_with(p.as_str()))
    }

    /// Parse the baseline file format.
    pub fn parse(text: &str) -> Result<Baseline, ParseError> {
        let mut b = Baseline::default();
        let mut current: Option<BaselineEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[entry]]" {
                if let Some(e) = current.take() {
                    finish_entry(e, lineno, &mut b)?;
                }
                current = Some(BaselineEntry {
                    file: String::new(),
                    rule: Rule::Panic,
                    allowed: 0,
                    reason: String::new(),
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ParseError {
                    line: lineno,
                    message: format!("expected `key = value` or `[[entry]]`, got `{line}`"),
                });
            };
            let (key, value) = (key.trim(), value.trim());
            match (&mut current, key) {
                (None, "deny") => {
                    b.deny = parse_string_array(value).ok_or_else(|| ParseError {
                        line: lineno,
                        message: "deny must be a single-line array of strings".to_string(),
                    })?;
                }
                (None, _) => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("unknown top-level key `{key}`"),
                    });
                }
                (Some(e), "file") => {
                    e.file = parse_string(value).ok_or_else(|| ParseError {
                        line: lineno,
                        message: "file must be a quoted string".to_string(),
                    })?;
                }
                (Some(e), "rule") => {
                    let id = parse_string(value).ok_or_else(|| ParseError {
                        line: lineno,
                        message: "rule must be a quoted string".to_string(),
                    })?;
                    e.rule = Rule::from_id(&id).ok_or_else(|| ParseError {
                        line: lineno,
                        message: format!("unknown rule id `{id}`"),
                    })?;
                    if e.rule == Rule::WaiverSyntax {
                        return Err(ParseError {
                            line: lineno,
                            message: "waiver-syntax violations cannot be baselined".to_string(),
                        });
                    }
                }
                (Some(e), "allowed") => {
                    e.allowed = value.parse().map_err(|_| ParseError {
                        line: lineno,
                        message: format!("allowed must be an integer, got `{value}`"),
                    })?;
                }
                (Some(e), "reason") => {
                    e.reason = parse_string(value).ok_or_else(|| ParseError {
                        line: lineno,
                        message: "reason must be a quoted string".to_string(),
                    })?;
                }
                (Some(_), _) => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("unknown entry key `{key}`"),
                    });
                }
            }
        }
        let last_line = text.lines().count();
        if let Some(e) = current.take() {
            finish_entry(e, last_line, &mut b)?;
        }
        Ok(b)
    }

    /// Serialize back to the file format (stable order: file, then rule).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# reopt-lint baseline — grandfathered violations.\n\
             #\n\
             # Every entry documents debt: at most `allowed` un-waived findings of\n\
             # `rule` in `file`, with a written reason. New violations are rejected.\n\
             # Regenerate counts with `cargo run -p reopt-lint -- --write-baseline`\n\
             # (reasons are preserved). Crates under a `deny` prefix have been burned\n\
             # down and may never re-enter this file.\n",
        );
        if !self.deny.is_empty() {
            let items = self
                .deny
                .iter()
                .map(|d| format!("\"{d}\""))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("\ndeny = [{items}]\n"));
        }
        let mut entries = self.entries.clone();
        entries.sort_by(|a, b| (&a.file, a.rule).cmp(&(&b.file, b.rule)));
        for e in &entries {
            out.push_str(&format!(
                "\n[[entry]]\nfile = \"{}\"\nrule = \"{}\"\nallowed = {}\nreason = \"{}\"\n",
                e.file,
                e.rule.id(),
                e.allowed,
                e.reason
            ));
        }
        out
    }
}

fn finish_entry(e: BaselineEntry, line: usize, b: &mut Baseline) -> Result<(), ParseError> {
    if e.file.is_empty() {
        return Err(ParseError {
            line,
            message: "entry missing `file`".to_string(),
        });
    }
    if e.reason.trim().is_empty() {
        return Err(ParseError {
            line,
            message: format!(
                "entry for `{}` has no reason — every grandfathered violation must say why",
                e.file
            ),
        });
    }
    if b.entries
        .iter()
        .any(|x| x.file == e.file && x.rule == e.rule)
    {
        return Err(ParseError {
            line,
            message: format!("duplicate entry for ({}, {})", e.file, e.rule),
        });
    }
    b.entries.push(e);
    Ok(())
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str) -> Option<String> {
    let v = value.trim();
    v.strip_prefix('"')?.strip_suffix('"').map(str::to_string)
}

fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let v = value.trim().strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for item in v.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_string(item)?);
    }
    Some(out)
}
