//! `reopt-lint` — the workspace determinism & robustness static-analysis
//! pass.
//!
//! Execution in this workspace promises **bit-identical** results across
//! thread counts, engines (row vs columnar), and mid-query replans. The
//! equivalence suites check that promise on the workloads they run; this
//! tool makes the underlying invariants *structural* by scanning every
//! `crates/*/src` file for the hazards that break them silently:
//!
//! | rule | id | hazard |
//! |------|----|--------|
//! | R1 | `unordered-iter` | `HashMap`/`HashSet` iteration in result-producing crates |
//! | R2 | `panic` | `unwrap`/`expect`/`panic!` in library code |
//! | R3 | `wall-clock` | `Instant::now`/`SystemTime`/OS entropy outside `crates/bench` |
//! | R4 | `relaxed` | `Ordering::Relaxed` without a written justification |
//! | R5 | `lock-unwrap` | `.lock().unwrap()` poisoning panics |
//!
//! A site is suppressed with `// lint: <kind>-ok(<reason>)` on the same or
//! the preceding line; the reason is mandatory. Pre-existing debt lives in
//! `lint-baseline.toml`; burned-down crates are deny-listed there so they
//! can never regress. See the README's "Static analysis" section.

pub mod baseline;
pub mod check;
pub mod lexer;
pub mod rules;

pub use baseline::{Baseline, BaselineEntry};
pub use check::{
    check, regenerate_baseline, render_report, scan_waivers, scan_workspace, CheckOutcome,
};
pub use rules::{lint_source, parse_waivers, Rule, Violation, Waiver};
