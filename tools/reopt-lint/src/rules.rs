//! The rule catalog (R1–R5) and waiver grammar.
//!
//! A waiver is a comment of the form `lint: <kind>-ok(<reason>)` placed on
//! the offending line or on the line directly above it. The reason is
//! mandatory and must be non-empty — an empty or malformed waiver is itself
//! a (non-baselineable) violation, so every suppression in the tree carries
//! a written justification.

use crate::lexer::{lex, LexedFile};
use std::fmt;

/// The rule catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// R1: iterating a `HashMap`/`HashSet` in a result-producing crate.
    /// Iteration order is unspecified and differs across processes, so any
    /// value that escapes such a loop can break bit-identical replay.
    UnorderedIter,
    /// R2: `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` in library
    /// code. Library failures must be `Error::internal` values, not aborts
    /// of a worker thread that poison shared state.
    Panic,
    /// R3: wall-clock or OS entropy (`Instant::now`, `SystemTime`,
    /// `thread_rng`, ...) outside `crates/bench`. All timing flows through
    /// `reopt_common::timing::Stopwatch`; everything else replays.
    WallClock,
    /// R4: `Ordering::Relaxed` without a written justification that the
    /// ordering cannot affect query results.
    RelaxedOrdering,
    /// R5: `.lock().unwrap()` — a panicked lock holder cascades into every
    /// later locker. Use `reopt_common::sync::lock_unpoisoned`.
    LockUnwrap,
    /// Malformed waiver: unknown kind or empty reason. Never baselineable.
    WaiverSyntax,
}

impl Rule {
    /// Stable identifier used in baseline files and reports.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnorderedIter => "unordered-iter",
            Rule::Panic => "panic",
            Rule::WallClock => "wall-clock",
            Rule::RelaxedOrdering => "relaxed",
            Rule::LockUnwrap => "lock-unwrap",
            Rule::WaiverSyntax => "waiver",
        }
    }

    /// The waiver kind that suppresses this rule (`// lint: <kind>(...)`).
    pub fn waiver_kind(self) -> Option<&'static str> {
        match self {
            Rule::UnorderedIter => Some("ordered-ok"),
            Rule::Panic => Some("panic-ok"),
            Rule::WallClock => Some("clock-ok"),
            Rule::RelaxedOrdering => Some("relaxed-ok"),
            Rule::LockUnwrap => Some("lock-ok"),
            Rule::WaiverSyntax => None,
        }
    }

    pub fn from_id(id: &str) -> Option<Rule> {
        match id {
            "unordered-iter" => Some(Rule::UnorderedIter),
            "panic" => Some(Rule::Panic),
            "wall-clock" => Some(Rule::WallClock),
            "relaxed" => Some(Rule::RelaxedOrdering),
            "lock-unwrap" => Some(Rule::LockUnwrap),
            "waiver" => Some(Rule::WaiverSyntax),
            _ => None,
        }
    }

    /// Whether the rule applies to `crate_name` (the `crates/<name>` stem).
    pub fn applies_to(self, crate_name: &str) -> bool {
        match self {
            // Every crate whose output feeds query results — including,
            // since the ingest refactor, the data-bearing crates: storage
            // mutates tables, stats derives the published statistics and
            // drift scores, sampling replays dry-run row sets. Unordered
            // iteration in any of them can leak into plan choice.
            Rule::UnorderedIter => {
                matches!(
                    crate_name,
                    "executor"
                        | "optimizer"
                        | "plan"
                        | "core"
                        | "service"
                        | "telemetry"
                        | "storage"
                        | "stats"
                        | "sampling"
                )
            }
            // Bench binaries are experiment drivers; panicking on a broken
            // setup is the right behavior there.
            Rule::Panic | Rule::WallClock => crate_name != "bench",
            Rule::RelaxedOrdering | Rule::LockUnwrap | Rule::WaiverSyntax => true,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    /// The offending code line, trimmed.
    pub excerpt: String,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file, self.line, self.rule, self.message, self.excerpt
        )
    }
}

/// A parsed waiver comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the waiver comment sits on.
    pub line: usize,
    /// e.g. `ordered-ok`.
    pub kind: String,
    pub reason: String,
}

/// Parse every `lint: <kind>(<reason>)` waiver out of a comment string.
pub fn parse_waivers(comment: &str, line: usize) -> Vec<Waiver> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:") {
        rest = &rest[pos + "lint:".len()..];
        let body = rest.trim_start();
        let kind_len = body
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-' || c == '_'))
            .unwrap_or(body.len());
        let kind = &body[..kind_len];
        let after_kind = &body[kind_len..];
        let reason = after_kind
            .strip_prefix('(')
            .and_then(|r| r.find(')').map(|end| r[..end].trim().to_string()));
        out.push(Waiver {
            line,
            kind: kind.to_string(),
            reason: reason.unwrap_or_default(),
        });
    }
    out
}

const KNOWN_KINDS: &[&str] = &[
    "ordered-ok",
    "panic-ok",
    "clock-ok",
    "relaxed-ok",
    "lock-ok",
];

/// Iteration methods whose visit order on a hash container is unspecified.
const UNORDERED_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
    ".retain(",
];

/// R2 patterns. `.unwrap()` keeps its parens so `unwrap_or*` never fires.
const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    ".expect_err(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// R3 patterns: wall-clock reads and OS entropy sources.
const CLOCK_PATTERNS: &[&str] = &[
    "Instant::now",
    "SystemTime",
    "thread_rng",
    "OsRng",
    "from_entropy",
    "getrandom",
];

/// Lint one file. `rel_path` is the repo-relative path used in diagnostics;
/// `crate_name` scopes rule applicability (`"executor"`, `"core"`, ...).
pub fn lint_source(rel_path: &str, crate_name: &str, source: &str) -> Vec<Violation> {
    let lexed = lex(source);
    let hash_idents = harvest_hash_idents(&lexed);
    let mut out = Vec::new();

    // Waiver syntax is checked everywhere, including test code: a broken
    // waiver anywhere is a lie waiting to migrate.
    for (idx, l) in lexed.lines.iter().enumerate() {
        for w in parse_waivers(&l.comment, idx + 1) {
            if !KNOWN_KINDS.contains(&w.kind.as_str()) {
                out.push(Violation {
                    file: rel_path.to_string(),
                    line: w.line,
                    rule: Rule::WaiverSyntax,
                    excerpt: l.comment.trim().to_string(),
                    message: format!(
                        "unknown waiver kind `{}` (known: {})",
                        w.kind,
                        KNOWN_KINDS.join(", ")
                    ),
                });
            } else if w.reason.is_empty() {
                out.push(Violation {
                    file: rel_path.to_string(),
                    line: w.line,
                    rule: Rule::WaiverSyntax,
                    excerpt: l.comment.trim().to_string(),
                    message: format!(
                        "waiver `{}` has an empty reason — every suppression must say why",
                        w.kind
                    ),
                });
            }
        }
    }

    let waived = |rule: Rule, line_idx: usize| -> bool {
        let Some(kind) = rule.waiver_kind() else {
            return false;
        };
        let has = |i: usize| {
            lexed.lines.get(i).is_some_and(|l| {
                parse_waivers(&l.comment, i + 1)
                    .iter()
                    .any(|w| w.kind == kind && !w.reason.is_empty())
            })
        };
        has(line_idx) || (line_idx > 0 && has(line_idx - 1))
    };

    let mut push = |rule: Rule, line_idx: usize, excerpt: &str, message: String| {
        if rule.applies_to(crate_name) && !waived(rule, line_idx) {
            out.push(Violation {
                file: rel_path.to_string(),
                line: line_idx + 1,
                rule,
                excerpt: excerpt.trim().to_string(),
                message,
            });
        }
    };

    for (idx, l) in lexed.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let code = l.code.as_str();

        // R5 before R2 so a `.lock().unwrap()` reports once, as R5.
        let mut lock_unwrap_here = false;
        if let Some(pos) = find_lock_panic(code) {
            lock_unwrap_here = true;
            push(
                Rule::LockUnwrap,
                idx,
                code,
                format!(
                    "`{}` panics every later locker once one holder dies; use \
                     reopt_common::sync::lock_unpoisoned",
                    &code[pos..code.len().min(pos + 16)].trim_end()
                ),
            );
        }

        // R2: no-panic library code.
        for pat in PANIC_PATTERNS {
            let mut search = 0usize;
            while let Some(rel) = code[search..].find(pat) {
                let pos = search + rel;
                search = pos + pat.len();
                if lock_unwrap_here && preceded_by_lock(code, pos) {
                    continue; // already reported as R5
                }
                push(
                    Rule::Panic,
                    idx,
                    code,
                    format!(
                        "`{}` in library code — return Error::internal instead",
                        pat.trim_end_matches('(')
                    ),
                );
            }
        }

        // R3: wall-clock / entropy.
        for pat in CLOCK_PATTERNS {
            if code.contains(pat) {
                push(
                    Rule::WallClock,
                    idx,
                    code,
                    format!(
                        "`{pat}` breaks replay determinism — route timing through \
                         reopt_common::timing::Stopwatch"
                    ),
                );
            }
        }

        // R4: Relaxed atomics need a written justification.
        if code.contains("Ordering::Relaxed") {
            push(
                Rule::RelaxedOrdering,
                idx,
                code,
                "`Ordering::Relaxed` must carry a `lint: relaxed-ok(<why results cannot \
                 depend on this ordering>)` waiver"
                    .to_string(),
            );
        }

        // R1: unordered iteration over a known hash container.
        for m in UNORDERED_METHODS {
            let mut search = 0usize;
            while let Some(rel) = code[search..].find(m) {
                let pos = search + rel;
                search = pos + m.len();
                // rustfmt splits long chains, so a method at the start of a
                // line gets its receiver from the previous code line.
                let recv = receiver_ident(code, pos).or_else(|| {
                    if code[..pos].trim().is_empty() {
                        prev_code_line(&lexed, idx)
                            .and_then(|prev| receiver_ident(prev, prev.trim_end().len()))
                    } else {
                        None
                    }
                });
                if let Some(recv) = recv {
                    if hash_idents.contains(&recv) {
                        push(
                            Rule::UnorderedIter,
                            idx,
                            code,
                            format!(
                                "`{recv}{}` iterates a hash container in unspecified order — \
                                 use a BTreeMap/BTreeSet, sort the results, or waive with \
                                 ordered-ok",
                                m.trim_end_matches('(')
                            ),
                        );
                    }
                }
            }
        }
        if let Some(expr) = for_loop_iterated_expr(code) {
            if let Some(recv) = trailing_ident(&expr) {
                if hash_idents.contains(&recv) {
                    push(
                        Rule::UnorderedIter,
                        idx,
                        code,
                        format!("`for … in {expr}` iterates a hash container in unspecified order"),
                    );
                }
            }
        }
    }
    out
}

/// The nearest non-blank code line strictly above `idx`, if any.
fn prev_code_line(lexed: &LexedFile, idx: usize) -> Option<&str> {
    lexed.lines[..idx]
        .iter()
        .rev()
        .map(|l| l.code.as_str())
        .find(|c| !c.trim().is_empty())
}

/// Find `.lock()` immediately followed by `.unwrap()` / `.expect(`.
fn find_lock_panic(code: &str) -> Option<usize> {
    let mut search = 0usize;
    while let Some(rel) = code[search..].find(".lock()") {
        let pos = search + rel;
        let after = code[pos + ".lock()".len()..].trim_start();
        if after.starts_with(".unwrap()") || after.starts_with(".expect(") {
            return Some(pos);
        }
        search = pos + ".lock()".len();
    }
    None
}

/// Whether the panic pattern at `pos` directly follows `.lock()`.
fn preceded_by_lock(code: &str, pos: usize) -> bool {
    code[..pos].trim_end().ends_with(".lock()")
}

/// Identifiers (variables, fields, map-returning methods) declared with a
/// `HashMap`/`HashSet` type somewhere in this file. Single-file and
/// line-local by design: a cross-file map type will not be caught here —
/// that is what the manual audit + the equivalence suites are for.
fn harvest_hash_idents(lexed: &LexedFile) -> Vec<String> {
    let mut idents = Vec::new();
    for l in &lexed.lines {
        let code = l.code.as_str();
        for marker in ["HashMap<", "HashSet<", "HashMap::", "HashSet::"] {
            let mut search = 0usize;
            while let Some(rel) = code[search..].find(marker) {
                let pos = search + rel;
                search = pos + marker.len();
                // `name: …Hash{Map,Set}<…>` — field, param, or let binding.
                if let Some(name) = decl_name_before(code, pos) {
                    if !idents.contains(&name) {
                        idents.push(name);
                    }
                }
            }
        }
        // `fn name(…) -> …Hash{Map,Set}…` — a map-returning accessor: the
        // call `self.name().iter()` is just as unordered as the field.
        if let (Some(fn_pos), Some(arrow)) = (find_fn_decl(code), code.find("->")) {
            let ret = &code[arrow..];
            if ret.contains("HashMap") || ret.contains("HashSet") {
                if let Some(name) = ident_at(code, fn_pos) {
                    if !idents.contains(&name) {
                        idents.push(name);
                    }
                }
            }
        }
    }
    idents
}

/// Position right after `fn ` in a function declaration, if any.
fn find_fn_decl(code: &str) -> Option<usize> {
    let pos = code.find("fn ")?;
    // Reject `fn` as a suffix of an identifier (e.g. `botfn `).
    if pos > 0 {
        let prev = code[..pos].chars().next_back()?;
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    Some(pos + 3)
}

/// Read the identifier starting at byte `pos`.
fn ident_at(code: &str, pos: usize) -> Option<String> {
    let rest = &code[pos..];
    let end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(rest[..end].to_string())
    }
}

/// Given the byte position of a `Hash{Map,Set}` type use, walk left over
/// type syntax to the `name:` / `name = ` that binds it.
fn decl_name_before(code: &str, type_pos: usize) -> Option<String> {
    // Drop the rest of the type path the marker sits in: the `Fx` of
    // `FxHashMap`, or a `std::collections::` qualifier.
    let mut left = code[..type_pos]
        .trim_end_matches(|c: char| c.is_alphanumeric() || c == '_' || c == ':')
        .trim_end();
    // Skip type-position tokens between the name and the hash type:
    // `&`, `&mut`, `Mutex<`, `Arc<`, lifetimes, `=` for let-inits.
    loop {
        let trimmed = left.trim_end();
        if let Some(stripped) = trimmed
            .strip_suffix('&')
            .or_else(|| trimmed.strip_suffix("&mut"))
            .or_else(|| trimmed.strip_suffix("mut"))
            .or_else(|| trimmed.strip_suffix('<'))
            .or_else(|| trimmed.strip_suffix('='))
            .or_else(|| trimmed.strip_suffix(','))
        {
            // `Wrapper<` — drop the wrapper type name too.
            let stripped = if trimmed.ends_with('<') {
                let s = stripped.trim_end();
                let cut = s
                    .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':'))
                    .map(|i| i + 1)
                    .unwrap_or(0);
                &s[..cut]
            } else {
                stripped
            };
            left = stripped;
            continue;
        }
        break;
    }
    let left = left.trim_end();
    let left = left.strip_suffix(':').unwrap_or(left).trim_end();
    let cut = left
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map(|i| i + 1)
        .unwrap_or(0);
    let name = &left[cut..];
    // A turbofish / path segment (`FxHashMap::default`) has no binder here.
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    // Reserved words that can sit before `:`/`=` in non-binding positions.
    if matches!(name, "in" | "return" | "else" | "if" | "match" | "where") {
        return None;
    }
    Some(name.to_string())
}

/// The identifier a method call at `dot_pos` (byte index of the `.`) is
/// invoked on: `map.iter()` → `map`; `self.lock().values()` → `lock`;
/// `delta.map.iter()` → `map`. Returns `None` for non-ident receivers.
fn receiver_ident(code: &str, dot_pos: usize) -> Option<String> {
    let mut left = &code[..dot_pos];
    // Skip a trailing call: `lock()` → position before `(`.
    if left.ends_with(')') {
        let mut depth = 0i32;
        let mut cut = None;
        for (i, c) in left.char_indices().rev() {
            match c {
                ')' => depth += 1,
                '(' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        left = &left[..cut?];
    }
    let cut = left
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map(|i| i + 1)
        .unwrap_or(0);
    let name = &left[cut..];
    if name.is_empty() {
        None
    } else {
        Some(name.to_string())
    }
}

/// For `for x in <expr> {`, the iterated expression (braces stripped).
fn for_loop_iterated_expr(code: &str) -> Option<String> {
    let for_pos = code.find("for ")?;
    if for_pos > 0 {
        let prev = code[..for_pos].chars().next_back()?;
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    let rest = &code[for_pos..];
    let in_pos = rest.find(" in ")?;
    let expr = &rest[in_pos + 4..];
    let expr = expr.split('{').next()?.trim();
    if expr.is_empty() {
        None
    } else {
        Some(expr.to_string())
    }
}

/// Trailing identifier of an expression: `&self.results` → `results`.
fn trailing_ident(expr: &str) -> Option<String> {
    let expr = expr.trim_end_matches(')');
    let cut = expr
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map(|i| i + 1)
        .unwrap_or(0);
    let name = &expr[cut..];
    if name.is_empty() {
        None
    } else {
        Some(name.to_string())
    }
}
