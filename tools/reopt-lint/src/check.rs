//! Workspace scan + baseline reconciliation.

use crate::baseline::{Baseline, BaselineEntry};
use crate::rules::{lint_source, parse_waivers, Rule, Violation, Waiver};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Scan every `crates/*/src/**/*.rs` under `root` and return all raw
/// violations, in deterministic (path, line) order.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for krate in sorted_dir(&crates_dir)? {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let rel = rel_path(root, &path);
        let crate_name = crate_name_of(&rel);
        let source = fs::read_to_string(&path)?;
        out.extend(lint_source(&rel, &crate_name, &source));
    }
    Ok(out)
}

/// Every waiver comment in the scanned tree, for auditing.
pub fn scan_waivers(root: &Path) -> io::Result<Vec<(String, Waiver)>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for krate in sorted_dir(&crates_dir)? {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let rel = rel_path(root, &path);
        let source = fs::read_to_string(&path)?;
        let lexed = crate::lexer::lex(&source);
        for (idx, l) in lexed.lines.iter().enumerate() {
            for w in parse_waivers(&l.comment, idx + 1) {
                out.push((rel.clone(), w));
            }
        }
    }
    Ok(out)
}

fn sorted_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        out.push(entry?.path());
    }
    out.sort();
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for path in sorted_dir(dir)? {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn crate_name_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string()
}

/// The reconciled outcome of a `--check` run.
#[derive(Debug, Default)]
pub struct CheckOutcome {
    /// Violations not covered by the baseline. Non-empty ⇒ fail.
    pub new_violations: Vec<Violation>,
    /// Baseline entries naming a deny-listed (burned-down) path. Fail.
    pub denied_entries: Vec<BaselineEntry>,
    /// Baseline entries whose actual count dropped below `allowed`
    /// (stale debt — tighten the baseline). Warning only.
    pub stale_entries: Vec<(BaselineEntry, usize)>,
    /// Total violations seen, including baselined ones.
    pub total: usize,
    /// Violations absorbed by the baseline.
    pub baselined: usize,
}

impl CheckOutcome {
    pub fn passed(&self) -> bool {
        self.new_violations.is_empty() && self.denied_entries.is_empty()
    }
}

/// Reconcile raw violations against the baseline.
///
/// Grouping is (file, rule): an entry absorbs up to `allowed` findings in
/// its group; the excess — and every finding in an un-baselined group — is
/// a new violation. Within a group the *first* `allowed` findings (by line)
/// are absorbed; this keeps the report stable across runs.
pub fn check(violations: &[Violation], baseline: &Baseline) -> CheckOutcome {
    let mut outcome = CheckOutcome {
        total: violations.len(),
        ..Default::default()
    };

    let mut groups: BTreeMap<(String, Rule), Vec<&Violation>> = BTreeMap::new();
    for v in violations {
        groups.entry((v.file.clone(), v.rule)).or_default().push(v);
    }

    for ((file, rule), group) in &groups {
        let allowed = match baseline.entry(file, *rule) {
            // Waiver-syntax findings are never absorbed (parse() also
            // rejects such entries, so this arm is belt-and-braces).
            Some(e) if *rule != Rule::WaiverSyntax => e.allowed,
            _ => 0,
        };
        let absorbed = group.len().min(allowed);
        outcome.baselined += absorbed;
        for v in &group[absorbed..] {
            outcome.new_violations.push((*v).clone());
        }
    }

    for e in &baseline.entries {
        if baseline.denied(&e.file) {
            outcome.denied_entries.push(e.clone());
        }
        let actual = groups.get(&(e.file.clone(), e.rule)).map_or(0, Vec::len);
        if actual < e.allowed {
            outcome.stale_entries.push((e.clone(), actual));
        }
    }
    outcome
}

/// Build a fresh baseline from the current violations, preserving reasons
/// from `previous` where a (file, rule) group survives.
pub fn regenerate_baseline(violations: &[Violation], previous: &Baseline) -> Baseline {
    let mut groups: BTreeMap<(String, Rule), usize> = BTreeMap::new();
    for v in violations {
        if v.rule == Rule::WaiverSyntax {
            continue; // must be fixed, not baselined
        }
        *groups.entry((v.file.clone(), v.rule)).or_default() += 1;
    }
    let mut b = Baseline {
        deny: previous.deny.clone(),
        entries: Vec::new(),
    };
    for ((file, rule), count) in groups {
        let reason = previous
            .entry(&file, rule)
            .map(|e| e.reason.clone())
            .unwrap_or_else(|| "TODO: justify or burn down".to_string());
        b.entries.push(BaselineEntry {
            file,
            rule,
            allowed: count,
            reason,
        });
    }
    b
}

/// Human-readable residual report (also uploaded as a CI artifact).
pub fn render_report(outcome: &CheckOutcome, baseline: &Baseline) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "reopt-lint report");
    let _ = writeln!(out, "=================");
    let _ = writeln!(
        out,
        "total findings: {} ({} baselined, {} new)",
        outcome.total,
        outcome.baselined,
        outcome.new_violations.len()
    );
    let _ = writeln!(out, "baseline entries: {}", baseline.entries.len());
    if !baseline.deny.is_empty() {
        let _ = writeln!(
            out,
            "burned-down (deny-listed): {}",
            baseline.deny.join(", ")
        );
    }
    if !outcome.new_violations.is_empty() {
        let _ = writeln!(out, "\nNEW VIOLATIONS");
        for v in &outcome.new_violations {
            let _ = writeln!(out, "{v}");
        }
    }
    if !outcome.denied_entries.is_empty() {
        let _ = writeln!(out, "\nBASELINE ENTRIES IN BURNED-DOWN CRATES (forbidden)");
        for e in &outcome.denied_entries {
            let _ = writeln!(out, "  {} [{}] allowed={}", e.file, e.rule.id(), e.allowed);
        }
    }
    if !outcome.stale_entries.is_empty() {
        let _ = writeln!(out, "\nSTALE BASELINE ENTRIES (actual < allowed; tighten)");
        for (e, actual) in &outcome.stale_entries {
            let _ = writeln!(
                out,
                "  {} [{}] allowed={} actual={}",
                e.file,
                e.rule.id(),
                e.allowed,
                actual
            );
        }
    }
    if !baseline.entries.is_empty() {
        let _ = writeln!(out, "\nRESIDUAL DEBT (baselined)");
        let mut entries = baseline.entries.clone();
        entries.sort_by(|a, b| (&a.file, a.rule).cmp(&(&b.file, b.rule)));
        for e in &entries {
            let _ = writeln!(
                out,
                "  {} [{}] allowed={} — {}",
                e.file,
                e.rule.id(),
                e.allowed,
                e.reason
            );
        }
    }
    out
}
