//! CLI for the workspace lint. See `--help`.

use reopt_lint::{baseline::Baseline, check, rules::Rule};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
reopt-lint — determinism & robustness static analysis for the reopt workspace

USAGE:
    cargo run -p reopt-lint -- [OPTIONS]

OPTIONS:
    --check              Fail (exit 1) on any violation not covered by
                         lint-baseline.toml, and on baseline entries inside
                         burned-down (deny-listed) crates. Default mode.
    --write-baseline     Regenerate lint-baseline.toml from the current tree,
                         preserving reasons of surviving entries.
    --report <PATH>      Also write the residual report to PATH.
    --root <PATH>        Workspace root (default: nearest ancestor of the
                         current directory containing lint-baseline.toml,
                         else the current directory).
    --list               Print every raw finding (including baselined ones).
    -h, --help           This text.
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut write_baseline = false;
    let mut list = false;
    let mut report_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => {}
            "--write-baseline" => write_baseline = true,
            "--list" => list = true,
            "--report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => return usage_error("--report needs a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown option `{other}`")),
        }
    }

    let root = root.unwrap_or_else(find_root);
    let baseline_path = root.join("lint-baseline.toml");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("reopt-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::default(),
    };

    let violations = match check::scan_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("reopt-lint: scanning {} failed: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if list {
        for v in &violations {
            println!("{v}");
        }
    }

    if write_baseline {
        let fresh = check::regenerate_baseline(&violations, &baseline);
        if let Some(e) = fresh.entries.iter().find(|e| fresh.denied(&e.file)) {
            eprintln!(
                "reopt-lint: refusing to write a baseline entry for burned-down path {} \
                 ({} × {}) — fix or waive the sites instead",
                e.file,
                e.allowed,
                e.rule.id()
            );
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&baseline_path, fresh.render()) {
            eprintln!(
                "reopt-lint: writing {} failed: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} entries)",
            baseline_path.display(),
            fresh.entries.len()
        );
        return ExitCode::SUCCESS;
    }

    let outcome = check::check(&violations, &baseline);
    let report = check::render_report(&outcome, &baseline);
    if let Some(path) = &report_path {
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("reopt-lint: writing {} failed: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    print!("{report}");

    // Waiver-syntax findings can hide inside otherwise-baselined groups;
    // surface them loudly.
    let broken_waivers = violations
        .iter()
        .filter(|v| v.rule == Rule::WaiverSyntax)
        .count();
    if broken_waivers > 0 {
        eprintln!("reopt-lint: {broken_waivers} malformed waiver(s) — see report");
    }

    if outcome.passed() {
        println!("reopt-lint: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "reopt-lint: FAILED — {} new violation(s), {} forbidden baseline entr(ies)",
            outcome.new_violations.len(),
            outcome.denied_entries.len()
        );
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("reopt-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Nearest ancestor holding `lint-baseline.toml` (so the tool runs from any
/// workspace subdirectory), else the current directory.
fn find_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        if dir.join("lint-baseline.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return cwd;
        }
    }
}
