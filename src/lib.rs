//! Facade crate — re-exports the whole workspace. See README.md.
pub use reopt_analysis as analysis;
pub use reopt_common as common;
pub use reopt_core as core;
pub use reopt_executor as executor;
pub use reopt_optimizer as optimizer;
pub use reopt_plan as plan;
pub use reopt_sampling as sampling;
pub use reopt_service as service;
pub use reopt_stats as stats;
pub use reopt_storage as storage;
pub use reopt_telemetry as telemetry;
pub use reopt_workloads as workloads;
